"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "3D-LE" in out
    assert "ARC-HW" in out
    assert "4090-Sim" in out


@pytest.fixture
def small_registry(monkeypatch):
    """Swap the workload registry for tiny instances to keep CLI tests
    fast (the real Table 2 workloads take seconds to build)."""
    from repro.workloads import GaussianWorkload

    def fake_load(key):
        return GaussianWorkload(
            key=key, dataset="d", description="x", n_gaussians=80,
            base_scale=0.15, extent=1.0, width=64, height=64, seed=1,
        )

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", fake_load)
    return fake_load


def test_profile(small_registry, capsys):
    assert main(["profile", "-w", "3D-LE"]) == 0
    out = capsys.readouterr().out
    assert "locality" in out
    assert "active lanes" in out


def test_simulate_table(small_registry, capsys):
    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "ARC-SW-B-8",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "ARC-HW" in out

    # Unknown strategy -> error exit code.
    assert main(["simulate", "-s", "nonsense"]) == 2


@pytest.mark.parametrize("bad_jobs", ["0", "-3", "many"])
def test_simulate_rejects_non_positive_jobs(bad_jobs, capsys):
    """``--jobs 0`` and friends get a friendly argparse error, not a
    traceback from deep inside the pool machinery."""
    with pytest.raises(SystemExit) as excinfo:
        main(["simulate", "--jobs", bad_jobs])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "positive integer" in err
    assert bad_jobs in err


def test_default_jobs_honors_env(monkeypatch):
    from repro.experiments.parallel import JOBS_ENV, default_jobs

    monkeypatch.setenv(JOBS_ENV, "3")
    assert default_jobs() == 3
    assert default_jobs(fallback=1) == 3  # env wins over the fallback

    for bogus in ("0", "-2", "banana", "  "):
        monkeypatch.setenv(JOBS_ENV, bogus)
        assert default_jobs(fallback=1) == 1  # ignored, not an error

    monkeypatch.delenv(JOBS_ENV)
    assert default_jobs(fallback=4) == 4
    assert default_jobs() >= 1  # cpu_count fallback


def test_simulate_parallel_prints_run_report(small_registry, capsys):
    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "--jobs", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "execution" in out
    assert "2 cells" in out


def test_train(small_registry, capsys):
    assert main(["train", "-w", "3D-LE", "-n", "3"]) == 0
    out = capsys.readouterr().out
    assert "PSNR" in out


def test_breakdown(small_registry, capsys):
    assert main(["breakdown", "-w", "3D-LE", "-g", "3060-Sim"]) == 0
    out = capsys.readouterr().out
    assert "forward" in out and "grad" in out


def test_tune(small_registry, capsys):
    assert main(["tune", "-w", "3D-LE", "-g", "3060-Sim",
                 "--variant", "B"]) == 0
    out = capsys.readouterr().out
    assert "best" in out


def test_tune_rejects_swb_on_divergent_kernel(monkeypatch, capsys):
    from repro.workloads import SphereWorkload

    def fake_load(key):
        return SphereWorkload(
            key=key, dataset="d", description="x", n_spheres=60,
            base_radius=0.16, width=64, height=64, seed=2,
        )

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", fake_load)
    assert main(["tune", "-w", "PS-SS", "--variant", "B"]) == 2


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


# --------------------------------------------------------------------- #
# Observability surfaces (timelines, Perfetto export, JSON, run logs)
# --------------------------------------------------------------------- #


def test_simulate_json_format(small_registry, capsys):
    import json

    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["workload"] == "3D-LE"
    assert doc["gpu"] == "3060-Sim"
    assert {result["strategy"] for result in doc["results"]} \
        == {"baseline", "ARC-HW"}
    assert all(result["total_cycles"] > 0 for result in doc["results"])
    assert doc["skipped"] == []


def test_simulate_json_reports_skipped_strategies(monkeypatch, capsys):
    import json

    from repro.workloads import SphereWorkload

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", lambda key: SphereWorkload(
        key=key, dataset="d", description="x", n_spheres=60,
        base_radius=0.16, width=64, height=64, seed=2,
    ))
    assert main([
        "simulate", "-w", "PS-SS", "-s", "baseline", "ARC-SW-B-8",
        "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["skipped"] == ["ARC-SW-B-8"]
    assert {result["strategy"] for result in doc["results"]} == {"baseline"}


def test_simulate_writes_timeline_per_strategy(small_registry, capsys,
                                               tmp_path):
    from repro.profiling import load_timeline, summarize_timeline

    base = tmp_path / "tl.json"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline", "ARC-HW",
        "--timeline", str(base), "-v",
    ]) == 0
    out = capsys.readouterr().out
    assert "timeline written" in out
    for name in ("baseline", "ARC-HW"):
        path = tmp_path / f"tl.{name}.json"
        assert path.exists(), name
        summary = summarize_timeline(load_timeline(path))
        assert summary.strategy == name
        assert summary.total_cycles > 0


def test_simulate_single_strategy_timeline_npz(small_registry, capsys,
                                               tmp_path):
    from repro.profiling import load_timeline

    base = tmp_path / "one.npz"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline",
        "--timeline", str(base),
    ]) == 0
    assert base.exists()
    assert load_timeline(base).meta["strategy"] == "baseline"


def test_profile_json_format(small_registry, capsys):
    import json

    assert main([
        "profile", "-w", "3D-LE", "-g", "4090-Sim",
        "--strategy", "ARC-HW", "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["profile"]["n_batches"] > 0
    assert 0.0 <= doc["profile"]["locality"] <= 1.0
    report = doc["stall_report"]
    assert report["strategy"] == "ARC-HW"
    assert report["gpu"] == "4090-Sim"
    assert sum(report["breakdown"].values()) == pytest.approx(1.0)


def test_profile_perfetto_on_histogram_workload(monkeypatch, capsys,
                                                tmp_path):
    """The ISSUE acceptance path: a Perfetto export of the histogram
    workload carries at least one span track per active sub-core plus
    the LSU / ROP / interconnect counter tracks."""
    import json

    from repro.workloads import HistogramWorkload

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", lambda key: HistogramWorkload(
        n_elements=4096, n_bins=64, smoothness=4, seed=7,
    ))
    out_path = tmp_path / "hist.trace.json"
    assert main([
        "profile", "-w", "3D-LE", "--perfetto", str(out_path),
    ]) == 0
    assert "perfetto trace written" in capsys.readouterr().out

    doc = json.loads(out_path.read_text())
    events = doc["traceEvents"]
    begins = [ev for ev in events if ev["ph"] == "B"]
    assert begins
    span_tracks = {ev["tid"] for ev in begins}
    assert len(span_tracks) >= 1
    counter_names = {ev["name"] for ev in events if ev["ph"] == "C"}
    assert any(name.startswith("lsu_queue[sm") for name in counter_names)
    assert any(name.startswith("rop_busy[p") for name in counter_names)
    assert "interconnect_busy" in counter_names


def test_timeline_command(small_registry, capsys, tmp_path):
    import json

    base = tmp_path / "tl.json"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline",
        "--timeline", str(base),
    ]) == 0
    capsys.readouterr()

    assert main(["timeline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "peak LSU occupancy" in out
    assert "interconnect util" in out

    assert main(["timeline", str(base), "--format", "json", "--top", "2"]) \
        == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["strategy"] == "baseline"
    assert len(doc["hot_slots"]) <= 2
    assert isinstance(doc["lsu_saturated"], bool)


def test_timeline_command_rejects_unreadable_file(tmp_path, capsys):
    assert main(["timeline", str(tmp_path / "missing.json")]) == 2
    assert "cannot read timeline" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# repro bench (scenario harness, BENCH_*.json, --compare)
# --------------------------------------------------------------------- #


def _tiny_bench_trace():
    from repro.trace import coalesced_trace

    return coalesced_trace(n_batches=40, n_slots=32, num_params=2, seed=9,
                           name="cli-bench")


@pytest.fixture
def tiny_bench_scenario(monkeypatch):
    """Register a tiny engine scenario so CLI bench tests stay fast."""
    from repro.bench import SCENARIOS, Scenario

    name = "tiny_cli"
    monkeypatch.setitem(SCENARIOS, name, Scenario(
        name=name, description="cli test scenario", mode="engine",
        cheap=True, repeats=2, traces=(("tiny", _tiny_bench_trace),),
        gpus=("3060-Sim",), strategies=("baseline", "ARC-HW"),
    ))
    return name


def test_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "engine_smoke" in out
    assert "cache_warm_vs_cold" in out
    assert "mode" in out


def test_bench_list_json(capsys):
    import json

    from repro.bench import scenario_names

    assert main(["bench", "--list", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert sorted(doc) == scenario_names()
    for entry in doc.values():
        assert entry["mode"] in (
            "engine", "telemetry", "cache", "parallel", "service",
        )
        assert isinstance(entry["cells"], int)


def test_bench_requires_scenario(capsys):
    assert main(["bench"]) == 2
    assert "scenario" in capsys.readouterr().err


def test_bench_unknown_scenario(capsys):
    assert main(["bench", "nonsense"]) == 2
    err = capsys.readouterr().err
    assert "unknown bench scenario" in err
    assert "engine_smoke" in err  # choices are listed


def test_bench_rejects_non_positive_repeats(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "engine_smoke", "--repeats", "0"])
    assert excinfo.value.code == 2
    assert "positive integer" in capsys.readouterr().err


def test_bench_writes_valid_document(tiny_bench_scenario, capsys, tmp_path):
    import json

    from repro.bench import validate_report

    out_path = tmp_path / "BENCH_tiny.json"
    assert main(["bench", tiny_bench_scenario, "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert f"bench {tiny_bench_scenario}" in out
    assert "median ms" in out
    assert "cells/sec" in out
    doc = json.loads(out_path.read_text())
    assert validate_report(doc) == []
    assert doc["scenario"] == tiny_bench_scenario
    assert {cell["strategy"] for cell in doc["cells"]} \
        == {"baseline", "ARC-HW"}


def test_bench_default_output_filename(tiny_bench_scenario, capsys,
                                       tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", tiny_bench_scenario]) == 0
    assert (tmp_path / f"BENCH_{tiny_bench_scenario}.json").exists()


def test_bench_json_format(tiny_bench_scenario, capsys, tmp_path):
    import json

    from repro.bench import validate_report

    assert main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "b.json"),
        "--format", "json", "--repeats", "1",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert validate_report(payload) == []
    assert payload["config"]["repeats"] == 1
    assert "comparison" not in payload


def test_bench_compare_self_passes(tiny_bench_scenario, capsys, tmp_path):
    baseline = tmp_path / "baseline.json"
    assert main(["bench", tiny_bench_scenario, "--out", str(baseline)]) == 0
    capsys.readouterr()
    assert main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "fresh.json"),
        "--compare", str(baseline), "--timing-tolerance", "20",
    ]) == 0
    out = capsys.readouterr().out
    assert "verdict: PASS" in out


def test_bench_compare_detects_injected_regression(tiny_bench_scenario,
                                                   capsys, tmp_path):
    """A deterministic drift in the baseline must fail the comparison
    regardless of timing tolerance -- the ISSUE acceptance path."""
    import json

    baseline = tmp_path / "baseline.json"
    assert main(["bench", tiny_bench_scenario, "--out", str(baseline)]) == 0
    capsys.readouterr()
    doc = json.loads(baseline.read_text())
    doc["cells"][0]["deterministic"]["sim_cycles"] += 1
    baseline.write_text(json.dumps(doc))
    code = main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "fresh.json"),
        "--compare", str(baseline), "--timing-tolerance", "100",
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "verdict: REGRESS" in out
    assert "mismatch" in out


def test_bench_compare_json_embeds_comparison(tiny_bench_scenario, capsys,
                                              tmp_path):
    import json

    baseline = tmp_path / "baseline.json"
    assert main(["bench", tiny_bench_scenario, "--out", str(baseline)]) == 0
    capsys.readouterr()
    assert main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "fresh.json"),
        "--compare", str(baseline), "--format", "json",
        "--timing-tolerance", "20",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["comparison"]["passed"] is True
    assert payload["comparison"]["scenario"] == tiny_bench_scenario


def test_bench_compare_unreadable_baseline(tiny_bench_scenario, capsys,
                                           tmp_path):
    assert main([
        "bench", tiny_bench_scenario,
        "--out", str(tmp_path / "fresh.json"),
        "--compare", str(tmp_path / "missing.json"),
    ]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_bench_compare_wrong_scenario_baseline(tiny_bench_scenario, capsys,
                                               tmp_path):
    import json

    baseline = tmp_path / "baseline.json"
    assert main(["bench", tiny_bench_scenario, "--out", str(baseline)]) == 0
    capsys.readouterr()
    doc = json.loads(baseline.read_text())
    doc["scenario"] = "something_else"
    baseline.write_text(json.dumps(doc))
    assert main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "fresh.json"),
        "--compare", str(baseline),
    ]) == 2
    assert "scenario mismatch" in capsys.readouterr().err


def test_bench_log_records_lifecycle(tiny_bench_scenario, capsys, tmp_path):
    from repro.obslog import read_events

    log = tmp_path / "bench.jsonl"
    assert main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "b.json"),
        "--log", str(log),
    ]) == 0
    names = [event["event"] for event in read_events(log)]
    assert "bench.start" in names
    assert "bench.finish" in names
    assert names.count("bench.cell") == 2


def test_cli_log_flag_writes_obslog(small_registry, capsys, tmp_path):
    import os

    from repro.obslog import OBSLOG_ENV, read_events

    log = tmp_path / "run.jsonl"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline", "--log", str(log),
    ]) == 0
    names = [event["event"] for event in read_events(log)]
    assert names[0] == "cli.start"
    assert names[-1] == "cli.finish"
    # Cache traffic from the run lands in the same stream.
    assert any(name.startswith("cache.") for name in names)
    # The sink does not leak past main().
    assert os.environ.get(OBSLOG_ENV) is None


# --------------------------------------------------------------------- #
# repro bench --history (trajectory collation)
# --------------------------------------------------------------------- #


def _history_doc(scenario, created, sha, dirty=False):
    return {
        "scenario": scenario,
        "created_unix": created,
        "git": {"sha": sha, "dirty": dirty},
        "engine_fingerprint": "e" * 64,
        "aggregate": {
            "wall_ms_total": 1234.5,
            "cells_per_sec": 8.0,
            "peak_rss_kb": 2048,
        },
        "cells": [{"key": "k"}],
    }


def test_bench_history_renders_trajectory(capsys, tmp_path):
    import json

    history = tmp_path / "history"
    (history / "run1").mkdir(parents=True)
    (history / "run1" / "BENCH_engine_smoke.json").write_text(
        json.dumps(_history_doc("engine_smoke", 1754000000, "abc1234def"))
    )
    (history / "BENCH_later.json").write_text(json.dumps(
        _history_doc("engine_smoke", 1754100000, "fedcba98765",
                     dirty=True)
    ))
    (history / "junk.json").write_text("{torn")

    assert main(["bench", "--history", str(history)]) == 0
    out = capsys.readouterr().out
    assert "engine_smoke" in out
    assert "abc1234de" in out  # 9-char sha
    assert "fedcba987*" in out  # dirty marker
    assert out.index("abc1234de") < out.index("fedcba987"), \
        "rows must be sorted oldest-first within a scenario"


def test_bench_history_json(capsys, tmp_path):
    import json

    history = tmp_path / "history"
    history.mkdir()
    (history / "BENCH_a.json").write_text(
        json.dumps(_history_doc("engine_smoke", 100, "a" * 40))
    )
    (history / "junk.json").write_text("not even json")
    assert main(["bench", "--history", str(history),
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [row["scenario"] for row in payload["rows"]] == ["engine_smoke"]
    assert payload["rows"][0]["source"] == "BENCH_a.json"
    assert len(payload["skipped"]) == 1


def test_bench_history_missing_directory(capsys, tmp_path):
    assert main(["bench", "--history", str(tmp_path / "absent")]) == 2
    assert "not found" in capsys.readouterr().err


def test_bench_history_empty_directory(capsys, tmp_path):
    history = tmp_path / "empty"
    history.mkdir()
    assert main(["bench", "--history", str(history)]) == 0
    assert "no BENCH documents" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# repro cache (sweep reporting)
# --------------------------------------------------------------------- #


def test_cache_reports_sweeps_and_tuning_knob(capsys, tmp_path,
                                              monkeypatch):
    import os
    import time

    from repro.experiments import diskcache

    root = tmp_path / "cache"
    cache = diskcache.configure(root=root, enabled=True)
    shard = root / "results" / "ab"
    shard.mkdir(parents=True)
    orphan = shard / ".deadbeef-stale.tmp"
    orphan.write_text("abandoned")
    ancient = time.time() - 2 * diskcache.sweep_age_seconds()
    os.utime(orphan, (ancient, ancient))
    diskcache.configure(root=root, enabled=True)  # reopen sweeps

    assert main(["cache"]) == 0
    out = capsys.readouterr().out
    assert "swept: 1 orphaned writer temp file(s)" in out
    assert diskcache.SWEEP_AGE_ENV in out
