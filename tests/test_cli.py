"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "3D-LE" in out
    assert "ARC-HW" in out
    assert "4090-Sim" in out


@pytest.fixture
def small_registry(monkeypatch):
    """Swap the workload registry for tiny instances to keep CLI tests
    fast (the real Table 2 workloads take seconds to build)."""
    from repro.workloads import GaussianWorkload

    def fake_load(key):
        return GaussianWorkload(
            key=key, dataset="d", description="x", n_gaussians=80,
            base_scale=0.15, extent=1.0, width=64, height=64, seed=1,
        )

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", fake_load)
    return fake_load


def test_profile(small_registry, capsys):
    assert main(["profile", "-w", "3D-LE"]) == 0
    out = capsys.readouterr().out
    assert "locality" in out
    assert "active lanes" in out


def test_simulate_table(small_registry, capsys):
    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "ARC-SW-B-8",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "ARC-HW" in out

    # Unknown strategy -> error exit code.
    assert main(["simulate", "-s", "nonsense"]) == 2


@pytest.mark.parametrize("bad_jobs", ["0", "-3", "many"])
def test_simulate_rejects_non_positive_jobs(bad_jobs, capsys):
    """``--jobs 0`` and friends get a friendly argparse error, not a
    traceback from deep inside the pool machinery."""
    with pytest.raises(SystemExit) as excinfo:
        main(["simulate", "--jobs", bad_jobs])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "positive integer" in err
    assert bad_jobs in err


def test_default_jobs_honors_env(monkeypatch):
    from repro.experiments.parallel import JOBS_ENV, default_jobs

    monkeypatch.setenv(JOBS_ENV, "3")
    assert default_jobs() == 3
    assert default_jobs(fallback=1) == 3  # env wins over the fallback

    for bogus in ("0", "-2", "banana", "  "):
        monkeypatch.setenv(JOBS_ENV, bogus)
        assert default_jobs(fallback=1) == 1  # ignored, not an error

    monkeypatch.delenv(JOBS_ENV)
    assert default_jobs(fallback=4) == 4
    assert default_jobs() >= 1  # cpu_count fallback


def test_simulate_parallel_prints_run_report(small_registry, capsys):
    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "--jobs", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "execution" in out
    assert "2 cells" in out


def test_train(small_registry, capsys):
    assert main(["train", "-w", "3D-LE", "-n", "3"]) == 0
    out = capsys.readouterr().out
    assert "PSNR" in out


def test_breakdown(small_registry, capsys):
    assert main(["breakdown", "-w", "3D-LE", "-g", "3060-Sim"]) == 0
    out = capsys.readouterr().out
    assert "forward" in out and "grad" in out


def test_tune(small_registry, capsys):
    assert main(["tune", "-w", "3D-LE", "-g", "3060-Sim",
                 "--variant", "B"]) == 0
    out = capsys.readouterr().out
    assert "best" in out


def test_tune_rejects_swb_on_divergent_kernel(monkeypatch, capsys):
    from repro.workloads import SphereWorkload

    def fake_load(key):
        return SphereWorkload(
            key=key, dataset="d", description="x", n_spheres=60,
            base_radius=0.16, width=64, height=64, seed=2,
        )

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", fake_load)
    assert main(["tune", "-w", "PS-SS", "--variant", "B"]) == 2


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


# --------------------------------------------------------------------- #
# Observability surfaces (timelines, Perfetto export, JSON, run logs)
# --------------------------------------------------------------------- #


def test_simulate_json_format(small_registry, capsys):
    import json

    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["workload"] == "3D-LE"
    assert doc["gpu"] == "3060-Sim"
    assert {result["strategy"] for result in doc["results"]} \
        == {"baseline", "ARC-HW"}
    assert all(result["total_cycles"] > 0 for result in doc["results"])
    assert doc["skipped"] == []


def test_simulate_json_reports_skipped_strategies(monkeypatch, capsys):
    import json

    from repro.workloads import SphereWorkload

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", lambda key: SphereWorkload(
        key=key, dataset="d", description="x", n_spheres=60,
        base_radius=0.16, width=64, height=64, seed=2,
    ))
    assert main([
        "simulate", "-w", "PS-SS", "-s", "baseline", "ARC-SW-B-8",
        "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["skipped"] == ["ARC-SW-B-8"]
    assert {result["strategy"] for result in doc["results"]} == {"baseline"}


def test_simulate_writes_timeline_per_strategy(small_registry, capsys,
                                               tmp_path):
    from repro.profiling import load_timeline, summarize_timeline

    base = tmp_path / "tl.json"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline", "ARC-HW",
        "--timeline", str(base), "-v",
    ]) == 0
    out = capsys.readouterr().out
    assert "timeline written" in out
    for name in ("baseline", "ARC-HW"):
        path = tmp_path / f"tl.{name}.json"
        assert path.exists(), name
        summary = summarize_timeline(load_timeline(path))
        assert summary.strategy == name
        assert summary.total_cycles > 0


def test_simulate_single_strategy_timeline_npz(small_registry, capsys,
                                               tmp_path):
    from repro.profiling import load_timeline

    base = tmp_path / "one.npz"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline",
        "--timeline", str(base),
    ]) == 0
    assert base.exists()
    assert load_timeline(base).meta["strategy"] == "baseline"


def test_profile_json_format(small_registry, capsys):
    import json

    assert main([
        "profile", "-w", "3D-LE", "-g", "4090-Sim",
        "--strategy", "ARC-HW", "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["profile"]["n_batches"] > 0
    assert 0.0 <= doc["profile"]["locality"] <= 1.0
    report = doc["stall_report"]
    assert report["strategy"] == "ARC-HW"
    assert report["gpu"] == "4090-Sim"
    assert sum(report["breakdown"].values()) == pytest.approx(1.0)


def test_profile_perfetto_on_histogram_workload(monkeypatch, capsys,
                                                tmp_path):
    """The ISSUE acceptance path: a Perfetto export of the histogram
    workload carries at least one span track per active sub-core plus
    the LSU / ROP / interconnect counter tracks."""
    import json

    from repro.workloads import HistogramWorkload

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", lambda key: HistogramWorkload(
        n_elements=4096, n_bins=64, smoothness=4, seed=7,
    ))
    out_path = tmp_path / "hist.trace.json"
    assert main([
        "profile", "-w", "3D-LE", "--perfetto", str(out_path),
    ]) == 0
    assert "perfetto trace written" in capsys.readouterr().out

    doc = json.loads(out_path.read_text())
    events = doc["traceEvents"]
    begins = [ev for ev in events if ev["ph"] == "B"]
    assert begins
    span_tracks = {ev["tid"] for ev in begins}
    assert len(span_tracks) >= 1
    counter_names = {ev["name"] for ev in events if ev["ph"] == "C"}
    assert any(name.startswith("lsu_queue[sm") for name in counter_names)
    assert any(name.startswith("rop_busy[p") for name in counter_names)
    assert "interconnect_busy" in counter_names


def test_timeline_command(small_registry, capsys, tmp_path):
    import json

    base = tmp_path / "tl.json"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline",
        "--timeline", str(base),
    ]) == 0
    capsys.readouterr()

    assert main(["timeline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "peak LSU occupancy" in out
    assert "interconnect util" in out

    assert main(["timeline", str(base), "--format", "json", "--top", "2"]) \
        == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["strategy"] == "baseline"
    assert len(doc["hot_slots"]) <= 2
    assert isinstance(doc["lsu_saturated"], bool)


def test_timeline_command_rejects_unreadable_file(tmp_path, capsys):
    assert main(["timeline", str(tmp_path / "missing.json")]) == 2
    assert "cannot read timeline" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# repro bench (scenario harness, BENCH_*.json, --compare)
# --------------------------------------------------------------------- #


def _tiny_bench_trace():
    from repro.trace import coalesced_trace

    return coalesced_trace(n_batches=40, n_slots=32, num_params=2, seed=9,
                           name="cli-bench")


@pytest.fixture
def tiny_bench_scenario(monkeypatch):
    """Register a tiny engine scenario so CLI bench tests stay fast."""
    from repro.bench import SCENARIOS, Scenario

    name = "tiny_cli"
    monkeypatch.setitem(SCENARIOS, name, Scenario(
        name=name, description="cli test scenario", mode="engine",
        cheap=True, repeats=2, traces=(("tiny", _tiny_bench_trace),),
        gpus=("3060-Sim",), strategies=("baseline", "ARC-HW"),
    ))
    return name


def test_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "engine_smoke" in out
    assert "cache_warm_vs_cold" in out
    assert "mode" in out


def test_bench_list_json(capsys):
    import json

    from repro.bench import scenario_names

    assert main(["bench", "--list", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert sorted(doc) == scenario_names()
    for entry in doc.values():
        assert entry["mode"] in (
            "engine", "telemetry", "cache", "parallel", "service",
        )
        assert isinstance(entry["cells"], int)


def test_bench_requires_scenario(capsys):
    assert main(["bench"]) == 2
    assert "scenario" in capsys.readouterr().err


def test_bench_unknown_scenario(capsys):
    assert main(["bench", "nonsense"]) == 2
    err = capsys.readouterr().err
    assert "unknown bench scenario" in err
    assert "engine_smoke" in err  # choices are listed


def test_bench_rejects_non_positive_repeats(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "engine_smoke", "--repeats", "0"])
    assert excinfo.value.code == 2
    assert "positive integer" in capsys.readouterr().err


def test_bench_writes_valid_document(tiny_bench_scenario, capsys, tmp_path):
    import json

    from repro.bench import validate_report

    out_path = tmp_path / "BENCH_tiny.json"
    assert main(["bench", tiny_bench_scenario, "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert f"bench {tiny_bench_scenario}" in out
    assert "median ms" in out
    assert "cells/sec" in out
    doc = json.loads(out_path.read_text())
    assert validate_report(doc) == []
    assert doc["scenario"] == tiny_bench_scenario
    assert {cell["strategy"] for cell in doc["cells"]} \
        == {"baseline", "ARC-HW"}


def test_bench_default_output_filename(tiny_bench_scenario, capsys,
                                       tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", tiny_bench_scenario]) == 0
    assert (tmp_path / f"BENCH_{tiny_bench_scenario}.json").exists()


def test_bench_json_format(tiny_bench_scenario, capsys, tmp_path):
    import json

    from repro.bench import validate_report

    assert main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "b.json"),
        "--format", "json", "--repeats", "1",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert validate_report(payload) == []
    assert payload["config"]["repeats"] == 1
    assert "comparison" not in payload


def test_bench_compare_self_passes(tiny_bench_scenario, capsys, tmp_path):
    baseline = tmp_path / "baseline.json"
    assert main(["bench", tiny_bench_scenario, "--out", str(baseline)]) == 0
    capsys.readouterr()
    assert main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "fresh.json"),
        "--compare", str(baseline), "--timing-tolerance", "20",
    ]) == 0
    out = capsys.readouterr().out
    assert "verdict: PASS" in out


def test_bench_compare_detects_injected_regression(tiny_bench_scenario,
                                                   capsys, tmp_path):
    """A deterministic drift in the baseline must fail the comparison
    regardless of timing tolerance -- the ISSUE acceptance path."""
    import json

    baseline = tmp_path / "baseline.json"
    assert main(["bench", tiny_bench_scenario, "--out", str(baseline)]) == 0
    capsys.readouterr()
    doc = json.loads(baseline.read_text())
    doc["cells"][0]["deterministic"]["sim_cycles"] += 1
    baseline.write_text(json.dumps(doc))
    code = main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "fresh.json"),
        "--compare", str(baseline), "--timing-tolerance", "100",
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "verdict: REGRESS" in out
    assert "mismatch" in out


def test_bench_compare_json_embeds_comparison(tiny_bench_scenario, capsys,
                                              tmp_path):
    import json

    baseline = tmp_path / "baseline.json"
    assert main(["bench", tiny_bench_scenario, "--out", str(baseline)]) == 0
    capsys.readouterr()
    assert main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "fresh.json"),
        "--compare", str(baseline), "--format", "json",
        "--timing-tolerance", "20",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["comparison"]["passed"] is True
    assert payload["comparison"]["scenario"] == tiny_bench_scenario


def test_bench_compare_unreadable_baseline(tiny_bench_scenario, capsys,
                                           tmp_path):
    assert main([
        "bench", tiny_bench_scenario,
        "--out", str(tmp_path / "fresh.json"),
        "--compare", str(tmp_path / "missing.json"),
    ]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_bench_compare_wrong_scenario_baseline(tiny_bench_scenario, capsys,
                                               tmp_path):
    import json

    baseline = tmp_path / "baseline.json"
    assert main(["bench", tiny_bench_scenario, "--out", str(baseline)]) == 0
    capsys.readouterr()
    doc = json.loads(baseline.read_text())
    doc["scenario"] = "something_else"
    baseline.write_text(json.dumps(doc))
    assert main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "fresh.json"),
        "--compare", str(baseline),
    ]) == 2
    assert "scenario mismatch" in capsys.readouterr().err


def test_bench_log_records_lifecycle(tiny_bench_scenario, capsys, tmp_path):
    from repro.obslog import read_events

    log = tmp_path / "bench.jsonl"
    assert main([
        "bench", tiny_bench_scenario, "--out", str(tmp_path / "b.json"),
        "--log", str(log),
    ]) == 0
    names = [event["event"] for event in read_events(log)]
    assert "bench.start" in names
    assert "bench.finish" in names
    assert names.count("bench.cell") == 2


def test_cli_log_flag_writes_obslog(small_registry, capsys, tmp_path):
    import os

    from repro.obslog import OBSLOG_ENV, read_events

    log = tmp_path / "run.jsonl"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline", "--log", str(log),
    ]) == 0
    names = [event["event"] for event in read_events(log)]
    assert names[0] == "cli.start"
    assert names[-1] == "cli.finish"
    # Cache traffic from the run lands in the same stream.
    assert any(name.startswith("cache.") for name in names)
    # The sink does not leak past main().
    assert os.environ.get(OBSLOG_ENV) is None


# --------------------------------------------------------------------- #
# repro bench --history (trajectory collation)
# --------------------------------------------------------------------- #


def _history_doc(scenario, created, sha, dirty=False, wall=1234.5):
    return {
        "scenario": scenario,
        "created_unix": created,
        "git": {"sha": sha, "dirty": dirty},
        "engine_fingerprint": "e" * 64,
        "aggregate": {
            "wall_ms_total": wall,
            "cells_per_sec": 8.0,
            "peak_rss_kb": 2048,
        },
        "cells": [{"key": "k"}],
    }


def test_bench_history_renders_trajectory(capsys, tmp_path):
    import json

    history = tmp_path / "history"
    (history / "run1").mkdir(parents=True)
    (history / "run1" / "BENCH_engine_smoke.json").write_text(
        json.dumps(_history_doc("engine_smoke", 1754000000, "abc1234def"))
    )
    (history / "BENCH_later.json").write_text(json.dumps(
        _history_doc("engine_smoke", 1754100000, "fedcba98765",
                     dirty=True)
    ))
    (history / "junk.json").write_text("{torn")

    assert main(["bench", "--history", str(history)]) == 0
    out = capsys.readouterr().out
    assert "engine_smoke" in out
    assert "abc1234de" in out  # 9-char sha
    assert "fedcba987*" in out  # dirty marker
    assert out.index("abc1234de") < out.index("fedcba987"), \
        "rows must be sorted oldest-first within a scenario"


def test_bench_history_json(capsys, tmp_path):
    import json

    history = tmp_path / "history"
    history.mkdir()
    (history / "BENCH_a.json").write_text(
        json.dumps(_history_doc("engine_smoke", 100, "a" * 40))
    )
    (history / "junk.json").write_text("not even json")
    assert main(["bench", "--history", str(history),
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [row["scenario"] for row in payload["rows"]] == ["engine_smoke"]
    assert payload["rows"][0]["source"] == "BENCH_a.json"
    assert len(payload["skipped"]) == 1


def test_bench_history_missing_directory(capsys, tmp_path):
    assert main(["bench", "--history", str(tmp_path / "absent")]) == 2
    assert "not found" in capsys.readouterr().err


def test_bench_history_empty_directory(capsys, tmp_path):
    history = tmp_path / "empty"
    history.mkdir()
    assert main(["bench", "--history", str(history)]) == 0
    assert "no BENCH documents" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# repro cache (sweep reporting)
# --------------------------------------------------------------------- #


def test_cache_reports_sweeps_and_tuning_knob(capsys, tmp_path,
                                              monkeypatch):
    import os
    import time

    from repro.experiments import diskcache

    root = tmp_path / "cache"
    cache = diskcache.configure(root=root, enabled=True)
    shard = root / "results" / "ab"
    shard.mkdir(parents=True)
    orphan = shard / ".deadbeef-stale.tmp"
    orphan.write_text("abandoned")
    ancient = time.time() - 2 * diskcache.sweep_age_seconds()
    os.utime(orphan, (ancient, ancient))
    diskcache.configure(root=root, enabled=True)  # reopen sweeps

    assert main(["cache"]) == 0
    out = capsys.readouterr().out
    assert "swept: 1 orphaned writer temp file(s)" in out
    assert diskcache.SWEEP_AGE_ENV in out


# --------------------------------------------------------------------- #
# repro trace (stitched request timelines)
# --------------------------------------------------------------------- #


def _span_line(name, trace_id, span_id, parent_id, start, dur, **attrs):
    import json

    record = {"event": "span", "ts": start, "pid": 7, "name": name,
              "trace_id": trace_id, "span_id": span_id,
              "parent_id": parent_id, "start_unix": start, "dur_ms": dur}
    record.update(attrs)
    return json.dumps(record, sort_keys=True) + "\n"


def _traced_obslog(path, cell="3D-LE|3060-Sim|baseline"):
    """Two traces: a busy executed request and a two-span memo hit."""
    busy, memo = "a" * 32, "b" * 32
    path.write_text(
        _span_line("svc.queue_wait", busy, "q" * 16, "r" * 16,
                   1000.0005, 2.0, role="broker")
        + _span_line("svc.attempt", busy, "t" * 16, "e" * 16,
                     1000.003, 40.0, role="broker", outcome="ok",
                     attempt=1)
        + _span_line("svc.execute", busy, "e" * 16, "r" * 16,
                     1000.002, 45.0, role="broker", cell=cell)
        + _span_line("svc.request", busy, "r" * 16, "c" * 16,
                     1000.0, 50.0, role="broker", outcome="worker")
        + _span_line("client.request", busy, "c" * 16, None,
                     999.999, 52.0, role="client")
        + _span_line("svc.request", memo, "m" * 16, None,
                     2000.0, 0.2, role="broker", outcome="memo")
        + _span_line("svc.queue_wait", memo, "n" * 16, "m" * 16,
                     2000.0001, 0.1, role="broker")
    )
    return busy, memo


def test_trace_list_shows_trace_ids(capsys, tmp_path):
    sink = tmp_path / "obslog.jsonl"
    busy, memo = _traced_obslog(sink)
    assert main(["trace", str(sink), "--list"]) == 0
    out = capsys.readouterr().out
    assert f"{busy}  5 spans" in out
    assert f"{memo}  2 spans" in out


def test_trace_stitches_busiest_trace_with_engine_spans(small_registry,
                                                        capsys, tmp_path):
    import json

    sink = tmp_path / "obslog.jsonl"
    busy, _ = _traced_obslog(sink)
    out_file = tmp_path / "stitched.json"
    assert main(["trace", str(sink), "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert f"trace {busy}" in out
    assert "client.request" in out and "svc.queue_wait" in out

    stitched = json.loads(out_file.read_text())
    assert stitched["otherData"]["trace_id"] == busy
    service = [e for e in stitched["traceEvents"]
               if e.get("pid") == 100 and e.get("ph") == "X"]
    assert {e["name"] for e in service} == {
        "client.request", "svc.request", "svc.queue_wait",
        "svc.execute", "svc.attempt",
    }
    engine = [e for e in stitched["traceEvents"]
              if e.get("pid") != 100 and e.get("ph") != "M"]
    assert engine, "the traced cell must be re-simulated into the export"
    # Engine sim-time is anchored at the successful attempt span.
    offset = stitched["otherData"]["anchor_offset_us"]
    assert offset == pytest.approx((1000.003 - 999.999) * 1e6)


def test_trace_no_engine_and_explicit_trace_id(capsys, tmp_path):
    import json

    sink = tmp_path / "obslog.jsonl"
    _, memo = _traced_obslog(sink)
    assert main(["trace", str(sink), "--trace-id", memo,
                 "--no-engine", "--format", "json"]) == 0
    stitched = json.loads(capsys.readouterr().out)
    assert stitched["otherData"]["trace_id"] == memo
    assert stitched["otherData"]["span_count"] == 2
    assert "anchor_offset_us" not in stitched["otherData"]
    assert all(e.get("pid") == 100 for e in stitched["traceEvents"])


def test_trace_errors_are_typed(capsys, tmp_path):
    sink = tmp_path / "obslog.jsonl"
    sink.write_text('{"event": "svc.listen", "ts": 1, "pid": 1}\n')
    assert main(["trace", str(sink)]) == 2
    assert "no span records" in capsys.readouterr().err
    _traced_obslog(sink)
    assert main(["trace", str(sink), "--trace-id", "f" * 32]) == 2
    assert "no spans for trace" in capsys.readouterr().err
    assert main(["trace", str(tmp_path / "missing-dir" / "x.jsonl"),
                 "--list"]) == 0  # missing file reads as empty log


def test_trace_unknown_cell_falls_back_to_wall_clock(capsys, tmp_path,
                                                     monkeypatch):
    """An obslog recorded against workloads this checkout cannot load
    still stitches -- with a warning instead of engine spans."""
    import repro.cli as cli

    def explode(key):
        raise KeyError(key)

    monkeypatch.setattr(cli, "load_workload", explode)
    sink = tmp_path / "obslog.jsonl"
    _traced_obslog(sink, cell="GONE|3060-Sim|baseline")
    assert main(["trace", str(sink)]) == 0
    captured = capsys.readouterr()
    assert "cannot re-simulate" in captured.err
    assert "client.request" in captured.out


# --------------------------------------------------------------------- #
# repro request introspection ops
# --------------------------------------------------------------------- #


def test_request_ops_report_unreachable_daemon(capsys, tmp_path):
    sock = str(tmp_path / "nonexistent.sock")
    assert main(["request", "--socket", sock]) == 2
    assert "cannot reach daemon" in capsys.readouterr().err
    assert main(["request", "--socket", sock, "--op", "metrics"]) == 2
    assert "cannot reach daemon" in capsys.readouterr().err


def test_request_metrics_formats_from_live_daemon(capsys, tmp_path,
                                                  monkeypatch):
    """--op metrics round-trips a real daemon: prom output is the
    exposition text, json is the snapshot, text is the compact view."""
    import asyncio
    import json
    import threading

    from repro.experiments import runner as exp_runner
    from repro.obs.metrics import MetricsRegistry
    from repro.service import Broker
    from repro.service.daemon import ServiceDaemon

    socket_path = tmp_path / "cli-metrics.sock"
    broker = Broker(jobs=1, metrics=MetricsRegistry(), session="cli-m")
    daemon = ServiceDaemon(broker, socket_path=socket_path)

    loop_holder = {}

    def serve():
        loop = asyncio.new_event_loop()
        loop_holder["loop"] = loop
        ready = asyncio.Event()
        loop_holder["task"] = loop.create_task(daemon.run(ready))
        loop.run_until_complete(loop_holder["task"])
        loop.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    for _ in range(200):
        if socket_path.exists():
            break
        thread.join(0.05)
    assert socket_path.exists(), "daemon never came up"
    try:
        assert main(["request", "--socket", str(socket_path),
                     "--op", "metrics", "--format", "prom"]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_service_requests_total counter" in prom
        assert "repro_service_breaker_state" in prom

        assert main(["request", "--socket", str(socket_path),
                     "--op", "metrics", "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["repro_service_requests_total"]["type"] == "counter"

        assert main(["request", "--socket", str(socket_path),
                     "--op", "metrics"]) == 0
        text = capsys.readouterr().out
        assert "requests" in text and "breaker=closed" in text

        assert main(["request", "--socket", str(socket_path),
                     "--op", "status"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["stats"]["requests"] == 0
    finally:
        loop_holder["loop"].call_soon_threadsafe(daemon.request_shutdown)
        thread.join(timeout=30)
    assert not thread.is_alive()


def test_bench_history_renders_same_machine_delta(capsys, tmp_path):
    import json

    host = {"platform": "L", "machine": "x", "python": "3",
            "cpu_count": 2}
    history = tmp_path / "history"
    history.mkdir()
    for index, (name, wall) in enumerate(
            [("BENCH_one.json", 1000.0), ("BENCH_two.json", 1250.0)]):
        doc = _history_doc("engine_smoke", 100 + index, "c" * 40,
                           wall=wall)
        doc["machine"] = host
        (history / name).write_text(json.dumps(doc))
    assert main(["bench", "--history", str(history)]) == 0
    out = capsys.readouterr().out
    assert "delta ms" in out
    assert "+250" in out
