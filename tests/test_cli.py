"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "3D-LE" in out
    assert "ARC-HW" in out
    assert "4090-Sim" in out


@pytest.fixture
def small_registry(monkeypatch):
    """Swap the workload registry for tiny instances to keep CLI tests
    fast (the real Table 2 workloads take seconds to build)."""
    from repro.workloads import GaussianWorkload

    def fake_load(key):
        return GaussianWorkload(
            key=key, dataset="d", description="x", n_gaussians=80,
            base_scale=0.15, extent=1.0, width=64, height=64, seed=1,
        )

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", fake_load)
    return fake_load


def test_profile(small_registry, capsys):
    assert main(["profile", "-w", "3D-LE"]) == 0
    out = capsys.readouterr().out
    assert "locality" in out
    assert "active lanes" in out


def test_simulate_table(small_registry, capsys):
    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "ARC-SW-B-8",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "ARC-HW" in out

    # Unknown strategy -> error exit code.
    assert main(["simulate", "-s", "nonsense"]) == 2


@pytest.mark.parametrize("bad_jobs", ["0", "-3", "many"])
def test_simulate_rejects_non_positive_jobs(bad_jobs, capsys):
    """``--jobs 0`` and friends get a friendly argparse error, not a
    traceback from deep inside the pool machinery."""
    with pytest.raises(SystemExit) as excinfo:
        main(["simulate", "--jobs", bad_jobs])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "positive integer" in err
    assert bad_jobs in err


def test_default_jobs_honors_env(monkeypatch):
    from repro.experiments.parallel import JOBS_ENV, default_jobs

    monkeypatch.setenv(JOBS_ENV, "3")
    assert default_jobs() == 3
    assert default_jobs(fallback=1) == 3  # env wins over the fallback

    for bogus in ("0", "-2", "banana", "  "):
        monkeypatch.setenv(JOBS_ENV, bogus)
        assert default_jobs(fallback=1) == 1  # ignored, not an error

    monkeypatch.delenv(JOBS_ENV)
    assert default_jobs(fallback=4) == 4
    assert default_jobs() >= 1  # cpu_count fallback


def test_simulate_parallel_prints_run_report(small_registry, capsys):
    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "--jobs", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "execution" in out
    assert "2 cells" in out


def test_train(small_registry, capsys):
    assert main(["train", "-w", "3D-LE", "-n", "3"]) == 0
    out = capsys.readouterr().out
    assert "PSNR" in out


def test_breakdown(small_registry, capsys):
    assert main(["breakdown", "-w", "3D-LE", "-g", "3060-Sim"]) == 0
    out = capsys.readouterr().out
    assert "forward" in out and "grad" in out


def test_tune(small_registry, capsys):
    assert main(["tune", "-w", "3D-LE", "-g", "3060-Sim",
                 "--variant", "B"]) == 0
    out = capsys.readouterr().out
    assert "best" in out


def test_tune_rejects_swb_on_divergent_kernel(monkeypatch, capsys):
    from repro.workloads import SphereWorkload

    def fake_load(key):
        return SphereWorkload(
            key=key, dataset="d", description="x", n_spheres=60,
            base_radius=0.16, width=64, height=64, seed=2,
        )

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", fake_load)
    assert main(["tune", "-w", "PS-SS", "--variant", "B"]) == 2


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
