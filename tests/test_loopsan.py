"""Runtime half of the async-safety story: the event-loop stall
sanitizer (:mod:`repro.service.loopsan`) and its cross-check against
the static ARC013 coroutine-blocking model.

Layered like the iosan suite: shim-mechanics units first (install /
uninstall, loop-thread gating, frame attribution, callback overrun
tracking), then the two chaos proofs the issue demands:

* a **clean** REPRO_SANITIZE=1 service run observes no loop-thread
  blocking frame the static model does not already contain;
* an **injected** ``loop-block`` fault is caught by both layers -- the
  runtime shim attributes the stall to the fault hook's frame, and the
  same qualified name is a member of the static blocking model (with
  the lint-level suppressed finding pinned in
  ``tests/test_lint_asyncsafety.py``).
"""

from __future__ import annotations

import asyncio
import builtins
import time

import pytest

from repro import obslog
from repro.experiments import faults, iosan
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.lint.engine import LintConfig
from repro.service import Broker, SimRequest, loopsan
from tests.test_lint_asyncsafety import real_tree_ctx
from tests.test_service import (
    fake_registry,  # noqa: F401  (fixture re-export)
    fast_policy,
    obslog_sink,  # noqa: F401
    ordered_burst,
    serial_truth,
)


@pytest.fixture(autouse=True)
def shim_hygiene():
    """Every test leaves the process un-shimmed and fault-free."""
    faults.configure(None)
    yield
    loopsan.uninstall()
    iosan.uninstall()
    faults.configure(None)


def arm(monkeypatch, tmp_path, slow_ms=None):
    log_path = tmp_path / "loopsan.jsonl"
    monkeypatch.setenv(loopsan.SANITIZE_ENV, "1")
    monkeypatch.setenv(loopsan.LOOPSAN_LOG_ENV, str(log_path))
    if slow_ms is not None:
        monkeypatch.setenv(loopsan.LOOPSAN_SLOW_MS_ENV, str(slow_ms))
    assert loopsan.maybe_install(), "shim must arm when both env vars set"
    return log_path


# --------------------------------------------------------------------- #
# Shim mechanics
# --------------------------------------------------------------------- #


def test_shared_gate_and_spawn_carry():
    """loopsan shares iosan's sanitize gate, and the worker-spawn env
    carry-list forwards its knobs so child processes can arm too."""
    assert loopsan.SANITIZE_ENV == iosan.SANITIZE_ENV
    carried = set(LintConfig().spawn_carry_env)
    assert loopsan.LOOPSAN_LOG_ENV in carried
    assert loopsan.LOOPSAN_SLOW_MS_ENV in carried


def test_disabled_without_env(monkeypatch):
    monkeypatch.delenv(loopsan.SANITIZE_ENV, raising=False)
    monkeypatch.delenv(loopsan.LOOPSAN_LOG_ENV, raising=False)
    assert not loopsan.enabled()
    assert not loopsan.maybe_install()
    assert not loopsan.installed()


def test_install_is_idempotent_and_uninstall_restores(monkeypatch,
                                                      tmp_path):
    pristine_open = builtins.open
    pristine_sleep = time.sleep
    arm(monkeypatch, tmp_path)
    shimmed_open = builtins.open
    assert shimmed_open is not pristine_open
    assert loopsan.maybe_install()  # second install is a no-op
    assert builtins.open is shimmed_open
    loopsan.uninstall()
    assert not loopsan.installed()
    assert builtins.open is pristine_open
    assert time.sleep is pristine_sleep


def test_chains_over_iosan(monkeypatch, tmp_path):
    """Install order iosan-then-loopsan: one os.open on the loop thread
    is observed by both sanitizers, and uninstalling in reverse order
    restores the pristine bindings."""
    import os as os_module

    pristine_os_open = os_module.open
    monkeypatch.setenv(iosan.SANITIZE_ENV, "1")
    monkeypatch.setenv(iosan.IOSAN_LOG_ENV, str(tmp_path / "io.jsonl"))
    assert iosan.maybe_install()
    loop_log = arm(monkeypatch, tmp_path)
    monkeypatch.setenv(obslog.OBSLOG_ENV, str(tmp_path / "obs.jsonl"))

    async def scenario():
        obslog.emit("loopsan.chain", note="one write, two observers")

    asyncio.run(scenario())
    loopsan.uninstall()
    iosan.uninstall()
    assert os_module.open is pristine_os_open
    assert loopsan.observed_frames(loopsan.read_log(loop_log)) \
        == {"repro.obslog.emit"}
    io_events = iosan.read_log(tmp_path / "io.jsonl")
    assert any(e.get("path", "").endswith("obs.jsonl")
               for e in io_events)


def test_attributes_loop_thread_primitive_to_repro_frame(monkeypatch,
                                                         tmp_path):
    log_path = arm(monkeypatch, tmp_path)
    monkeypatch.setenv(obslog.OBSLOG_ENV, str(tmp_path / "obs.jsonl"))

    async def scenario():
        obslog.emit("loopsan.unit", note="on the loop")

    asyncio.run(scenario())
    events = loopsan.read_log(log_path)
    assert events, "loop-thread os.open must be recorded"
    assert loopsan.observed_frames(events) == {"repro.obslog.emit"}
    assert all(event["op"] == "os.open" for event in events)
    assert all(not event["stalled"] for event in events)


def test_off_loop_blocking_is_not_recorded(monkeypatch, tmp_path):
    """Worker threads and plain sync code may block freely."""
    log_path = arm(monkeypatch, tmp_path)
    monkeypatch.setenv(obslog.OBSLOG_ENV, str(tmp_path / "obs.jsonl"))
    obslog.emit("loopsan.offloop", note="no loop running here")
    time.sleep(0.0)
    assert loopsan.read_log(log_path) == []


def test_callback_overrun_records_without_frame(monkeypatch, tmp_path):
    """A callback that holds the loop past the threshold is recorded by
    the Handle._run tracker even when no shimmed primitive caused it --
    and frame-less callback records fold out of the frame sets."""
    log_path = arm(monkeypatch, tmp_path, slow_ms=10)

    async def scenario():
        loopsan.arm_loop(asyncio.get_running_loop())
        done = asyncio.Event()

        def busy():
            end = time.perf_counter() + 0.05
            while time.perf_counter() < end:
                pass
            done.set()

        asyncio.get_running_loop().call_soon(busy)
        await done.wait()

    asyncio.run(scenario())
    events = loopsan.read_log(log_path)
    overruns = [e for e in events if e["op"] == "callback"]
    assert overruns, "10ms threshold must catch a 50ms busy callback"
    assert any("busy" in e["callback"] for e in overruns)
    assert all(e["stalled"] for e in overruns)
    assert loopsan.observed_frames(overruns) == set()


def test_threshold_env_overrides_default(monkeypatch):
    monkeypatch.delenv(loopsan.LOOPSAN_SLOW_MS_ENV, raising=False)
    assert loopsan.slow_threshold_ms() == loopsan.DEFAULT_SLOW_MS
    monkeypatch.setenv(loopsan.LOOPSAN_SLOW_MS_ENV, "25")
    assert loopsan.slow_threshold_ms() == 25.0
    monkeypatch.setenv(loopsan.LOOPSAN_SLOW_MS_ENV, "not-a-number")
    assert loopsan.slow_threshold_ms() == loopsan.DEFAULT_SLOW_MS


def test_read_log_missing_file_is_empty():
    assert loopsan.read_log("/nonexistent/loopsan.jsonl") == []


# --------------------------------------------------------------------- #
# Chaos cross-check against the static ARC013 model
# --------------------------------------------------------------------- #


def _static_blocking_model() -> set:
    from repro.lint.rules.asyncsafety import _analyses

    _, contexts = _analyses(real_tree_ctx())
    return contexts.blocking_model()


def test_clean_service_run_blocks_only_inside_static_model(
        fake_registry, tmp_path, monkeypatch, obslog_sink):  # noqa: F811
    """Under REPRO_SANITIZE=1 a clean coalescing service run performs
    no loop-thread blocking call the static ARC013 model does not
    explain: every observed frame is a modeled (suppressed or
    allowlisted) blocker."""
    truth = serial_truth(tmp_path, ["S1", "S2"], ["baseline"])
    log_path = arm(monkeypatch, tmp_path)
    requests = [
        SimRequest(workload=workload, gpu="3060-Sim", strategy="baseline")
        for workload in ("S1", "S2", "S1", "S2", "S1")
    ]
    broker = Broker(jobs=2, paused=True, policy=fast_policy(),
                    session="loopsan-clean")
    responses = asyncio.run(ordered_burst(broker, requests))
    loopsan.uninstall()
    assert all(not isinstance(r, BaseException) for r in responses)
    assert responses[0].result.to_dict() \
        == truth[("S1", "3060-Sim", "baseline")]

    events = loopsan.read_log(log_path)
    assert events, "armed shim must observe the run's loop-thread I/O"
    observed = loopsan.observed_frames(events)
    assert observed, "journal/obslog writes happen on the loop thread"
    unexplained = observed - _static_blocking_model()
    assert not unexplained, (
        "loop-thread blocking frames the static ARC013 model does not "
        f"explain: {sorted(unexplained)}"
    )


def test_injected_loop_block_fault_is_caught_by_both_layers(
        fake_registry, tmp_path, monkeypatch, obslog_sink):  # noqa: F811
    """A planned ``loop-block`` fault stalls the loop inside the
    admission path.  The runtime shim must attribute the stall to the
    fault hook's frame, and the static model must already contain that
    exact qualified name (the lint finding itself -- suppressed with an
    inline justification at the broker call site -- is pinned in
    tests/test_lint_asyncsafety.py)."""
    serial_truth(tmp_path, ["S1"], ["baseline"])
    log_path = arm(monkeypatch, tmp_path, slow_ms=50)
    faults.configure(FaultPlan((
        FaultSpec(cell="S1|3060-Sim|baseline", kind="loop-block",
                  times=1, seconds=0.25),
    )))
    broker = Broker(jobs=1, paused=True, policy=fast_policy(),
                    session="loopsan-fault")
    responses = asyncio.run(ordered_burst(broker, [
        SimRequest(workload="S1", gpu="3060-Sim", strategy="baseline"),
    ]))
    loopsan.uninstall()
    # The fault stalls admission; it must not corrupt the request.
    assert all(not isinstance(r, BaseException) for r in responses)

    events = loopsan.read_log(log_path)
    stalled = loopsan.stalled_frames(events)
    hook = "repro.experiments.faults.on_admission"
    assert hook in stalled, (
        f"runtime layer missed the injected stall: stalled={sorted(stalled)}"
    )
    sleeps = [e for e in events
              if e["op"] == "sleep" and e.get("frame") == hook]
    assert sleeps and all(e["duration_ms"] >= 200 for e in sleeps)
    assert hook in _static_blocking_model(), (
        "static layer missed the injected stall: the fault hook must be "
        "a member of the coroutine-blocking model"
    )


def test_loop_block_fault_spec_round_trips():
    """The new fault kind is part of the planned-fault vocabulary."""
    assert "loop-block" in faults.FAULT_KINDS
    spec = FaultSpec(cell="S1|3060-Sim|baseline", kind="loop-block",
                     times=2, seconds=0.1)
    plan = FaultPlan((spec,))
    assert plan.find("S1|3060-Sim|baseline", "loop-block", 1) is spec
    assert plan.find("S1|3060-Sim|baseline", "loop-block", 2) is spec
    assert plan.find("S1|3060-Sim|baseline", "loop-block", 3) is None
