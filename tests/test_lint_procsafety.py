"""Unit tests for the process-safety analyses behind ARC009-ARC012.

The rule-level verdicts live in ``tests/test_lint_fixtures.py``; these
tests pin the two underlying analyses directly -- the process-context
lattice (:mod:`repro.lint.dataflow.procctx`) and the shared-resource
escape analysis (:mod:`repro.lint.dataflow.resources`) -- on synthetic
mini-trees *and* on the real tree, so a regression is attributable to
the analysis that broke rather than to whichever rule noticed first.

The real-tree expectations double as the static half of the
``REPRO_SANITIZE`` cross-check: ``test_chaos.py`` asserts the protocols
the runtime I/O shim observes are a subset of the model pinned here.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lint.dataflow import analysis_for
from repro.lint.dataflow.procctx import (
    BOTH,
    PARENT,
    WORKER,
    ProcessContexts,
)
from repro.lint.dataflow.resources import (
    PROTOCOL_APPEND,
    PROTOCOL_ATOMIC_RENAME,
    PROTOCOL_RAW_WRITE,
    SOUND_PROTOCOLS,
    ResourceModel,
)
from repro.lint.engine import (
    LintConfig,
    LintContext,
    collect_files,
    parse_module,
)
from repro.lint.rules.concurrency import _analyses, _scope_modules


def build_ctx(tmp_path: Path, files: dict) -> LintContext:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    modules = []
    for path, root in collect_files([tmp_path]):
        module, error = parse_module(path, root)
        assert error is None, f"fixture does not parse: {error}"
        modules.append(module)
    return LintContext(LintConfig(), modules)


def build_contexts(tmp_path: Path, files: dict) -> ProcessContexts:
    ctx = build_ctx(tmp_path, files)
    analysis = analysis_for(ctx)
    return ProcessContexts(analysis.table, analysis.graph, ctx.config)


_PIPELINE = {
    "experiments/pipeline.py": (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def _init(value):\n"
        "    pass\n"
        "def _helper(index):\n"
        "    return index * 2\n"
        "def _task(index):\n"
        "    return _helper(index)\n"
        "def _shared(index):\n"
        "    return index\n"
        "def plan(values):\n"
        "    return [_shared(v) for v in values]\n"
        "def run(values):\n"
        "    plan(values)\n"
        "    out = []\n"
        "    with ProcessPoolExecutor(max_workers=2,\n"
        "                             initializer=_init) as pool:\n"
        "        futures = [pool.submit(_task, i) for i in values]\n"
        "        for future in futures:\n"
        "            out.append(future.result(timeout=60))\n"
        "    return [_shared(v) for v in out]\n"
        "def worker_side(index):\n"
        "    return _shared(index)\n"
        "def spawn_proc(values):\n"
        "    import multiprocessing\n"
        "    proc = multiprocessing.Process(target=worker_side)\n"
        "    proc.start()\n"
    ),
}


def test_submit_and_initializer_are_worker_entries(tmp_path):
    contexts = build_contexts(tmp_path, _PIPELINE)
    entries = {q.rsplit(".", 1)[-1] for q in contexts.worker_entries}
    assert entries == {"_task", "_init", "worker_side"}


def test_worker_closure_follows_calls(tmp_path):
    contexts = build_contexts(tmp_path, _PIPELINE)

    def ctx_of(name):
        return contexts.context_of(f"experiments.pipeline.{name}")

    assert ctx_of("_task") == WORKER
    assert ctx_of("_helper") == WORKER  # only reachable from _task
    assert ctx_of("_init") == WORKER
    assert ctx_of("run") == PARENT
    assert ctx_of("plan") == PARENT
    # _shared is called by plan/run (parent) and worker_side (worker).
    assert ctx_of("_shared") == BOTH


def test_unreachable_functions_default_to_parent(tmp_path):
    contexts = build_contexts(tmp_path, {
        "experiments/orphan.py": (
            "def lonely(x):\n"
            "    return x\n"
        ),
    })
    assert contexts.context_of("experiments.orphan.lonely") == PARENT
    assert not contexts.worker_context("experiments.orphan.lonely")


def test_resource_model_classifies_param_and_alias(tmp_path):
    ctx = build_ctx(tmp_path, {
        "experiments/store.py": (
            "import os\n"
            "import tempfile\n"
            "def commit(entry_path, payload):\n"
            "    target = entry_path\n"
            "    fd, tmp = tempfile.mkstemp(dir=target.parent)\n"
            "    with os.fdopen(fd, 'w') as handle:\n"
            "        handle.write(payload)\n"
            "    os.replace(tmp, target)\n"
            "def read_back(entry_path):\n"
            "    with open(entry_path) as handle:\n"
            "        return handle.read()\n"
        ),
    })
    analysis = analysis_for(ctx)
    model = ResourceModel(
        analysis.table, analysis.graph, ctx.config, _scope_modules(ctx)
    )
    writes = model.writes()
    assert [(w.resource, w.protocol) for w in writes] == [
        ("cache-results", PROTOCOL_ATOMIC_RENAME),
    ]
    reads = [a for a in model.accesses if a.kind == "read"]
    assert [(r.resource, r.function.rsplit(".", 1)[-1]) for r in reads] == [
        ("cache-results", "read_back"),
    ]


def test_resource_model_propagates_through_returns_and_args(tmp_path):
    ctx = build_ctx(tmp_path, {
        "experiments/paths.py": (
            "from pathlib import Path\n"
            "def entry_path(results_dir, key):\n"
            "    return Path(results_dir) / key\n"
        ),
        "experiments/writer.py": (
            "from experiments.paths import entry_path\n"
            "def corrupt(path):\n"
            "    path.write_bytes(b'x')\n"
            "def smash(root, key):\n"
            "    corrupt(entry_path(root, key))\n"
        ),
    })
    analysis = analysis_for(ctx)
    model = ResourceModel(
        analysis.table, analysis.graph, ctx.config, _scope_modules(ctx)
    )
    # entry_path's results_dir param seeds the class, the return summary
    # carries it to smash's call site, and one level of param
    # propagation attributes corrupt()'s write_bytes to the class.
    assert model.returns["experiments.paths.entry_path"] == "cache-results"
    writes = model.writes()
    assert [(w.function.rsplit('.', 1)[-1], w.resource, w.protocol)
            for w in writes] == [
        ("corrupt", "cache-results", PROTOCOL_RAW_WRITE),
    ]


def test_class_context_seeds_self_paths(tmp_path):
    ctx = build_ctx(tmp_path, {
        "experiments/journal.py": (
            "import os\n"
            "class RunManifest:\n"
            "    def __init__(self, path):\n"
            "        self.path = path\n"
            "    def record(self, line):\n"
            "        fd = os.open(self.path,\n"
            "                     os.O_WRONLY | os.O_CREAT | os.O_APPEND)\n"
            "        try:\n"
            "            os.write(fd, line.encode('utf-8'))\n"
            "        finally:\n"
            "            os.close(fd)\n"
        ),
    })
    analysis = analysis_for(ctx)
    model = ResourceModel(
        analysis.table, analysis.graph, ctx.config, _scope_modules(ctx)
    )
    # 'self.path' carries no pattern, but the enclosing class name does.
    assert [(w.resource, w.protocol) for w in model.writes()] == [
        ("manifest", PROTOCOL_APPEND),
    ]


# --------------------------------------------------------------------- #
# Real-tree expectations: the static model the sanitizer cross-checks
# --------------------------------------------------------------------- #


def real_tree_ctx() -> LintContext:
    root = Path(repro.__file__).parent
    modules = []
    for path, file_root in collect_files([root]):
        module, error = parse_module(path, file_root)
        if error is None:
            modules.append(module)
    return LintContext(LintConfig(), modules)


def test_real_tree_contexts():
    ctx = real_tree_ctx()
    _, contexts, _ = _analyses(ctx)

    def ctx_of(qname):
        return contexts.context_of(f"repro.experiments.{qname}")

    assert ctx_of("parallel._run_spec") == WORKER
    assert ctx_of("parallel._worker_init") == WORKER
    assert ctx_of("parallel._worker_trace") == WORKER
    assert ctx_of("faults.mark_worker") == WORKER
    assert ctx_of("parallel.run_matrix_parallel") == PARENT
    assert ctx_of("parallel._fallback_spec") == PARENT
    # Fault hooks and the cache run on both sides of the pool.
    assert ctx_of("faults.on_attempt") == BOTH
    assert ctx_of("faults.active_plan") == BOTH
    assert ctx_of("runner.simulate_cell") == BOTH
    assert ctx_of("diskcache.configure") == BOTH


def test_real_tree_protocol_model():
    """The static (resource -> protocols) model of the shipped tree.

    This is the model the REPRO_SANITIZE I/O shim diffs runtime
    observations against; pinning it here means an unmodeled writer
    fails *this* suite even before the chaos cross-check runs.
    """
    ctx = real_tree_ctx()
    _, _, resources = _analyses(ctx)
    model = {
        resource: set(protocols)
        for resource, protocols in resources.protocol_model().items()
    }
    assert model == {
        "cache-results": {PROTOCOL_ATOMIC_RENAME, PROTOCOL_RAW_WRITE},
        "cache-quarantine": {PROTOCOL_ATOMIC_RENAME},
        "manifest": {PROTOCOL_APPEND},
        "obslog": {PROTOCOL_APPEND},
    }
    # The single unsound writer is the fault injector's deliberate torn
    # write (suppressed ARC009); everything else is sound.
    unsound = [
        access for access in resources.writes()
        if access.protocol not in SOUND_PROTOCOLS
    ]
    assert [(a.module_path, a.function.rsplit(".", 1)[-1])
            for a in unsound] == [
        ("experiments/faults.py", "corrupt_entry"),
    ]


def test_iosan_protocol_names_match_static_model():
    """The runtime shim's protocol vocabulary equals the lint layer's.

    iosan deliberately duplicates the strings (experiments must not
    import repro.lint); this pin keeps the two from drifting apart.
    """
    from repro.experiments import iosan
    from repro.lint.dataflow import resources as static

    assert iosan.PROTOCOL_ATOMIC_RENAME == static.PROTOCOL_ATOMIC_RENAME
    assert iosan.PROTOCOL_APPEND == static.PROTOCOL_APPEND
    assert iosan.PROTOCOL_TEMP == static.PROTOCOL_TEMP
    assert iosan.PROTOCOL_RAW_WRITE == static.PROTOCOL_RAW_WRITE
    assert iosan.PROTOCOL_BUFFERED_APPEND == static.PROTOCOL_BUFFERED_APPEND
