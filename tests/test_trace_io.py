"""Tests for trace serialization (.npz round-trips)."""

import numpy as np
import pytest

from repro.trace import coalesced_trace, scattered_trace
from repro.trace.io import load_trace, save_trace


def test_roundtrip_preserves_everything(tmp_path):
    trace = coalesced_trace(
        n_batches=50, num_params=4, seed=3, with_values=True,
        name="roundtrip",
    )
    path = save_trace(trace, tmp_path / "trace.npz")
    loaded = load_trace(path)
    np.testing.assert_array_equal(loaded.lane_slots, trace.lane_slots)
    np.testing.assert_array_equal(loaded.warp_id, trace.warp_id)
    np.testing.assert_array_equal(loaded.values, trace.values)
    assert loaded.num_params == trace.num_params
    assert loaded.n_slots == trace.n_slots
    assert loaded.name == "roundtrip"
    assert loaded.bfly_eligible == trace.bfly_eligible


def test_roundtrip_without_values(tmp_path):
    trace = scattered_trace(n_batches=30, seed=1)
    loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
    assert loaded.values is None
    assert not loaded.bfly_eligible  # scattered traces are ineligible


def test_per_batch_compute_cycles_roundtrip(tmp_path):
    trace = coalesced_trace(n_batches=20, seed=2)
    trace = type(trace)(
        lane_slots=trace.lane_slots,
        num_params=trace.num_params,
        n_slots=trace.n_slots,
        warp_id=trace.warp_id,
        compute_cycles=np.linspace(5.0, 50.0, 20),
    )
    loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
    np.testing.assert_allclose(
        loaded.compute_cycles_per_batch, trace.compute_cycles_per_batch
    )


def test_suffix_added_automatically(tmp_path):
    trace = coalesced_trace(n_batches=5)
    path = save_trace(trace, tmp_path / "noext")
    assert path.suffix == ".npz"
    assert path.exists()


def test_version_check(tmp_path):
    trace = coalesced_trace(n_batches=5)
    path = save_trace(trace, tmp_path / "t.npz")
    data = dict(np.load(path, allow_pickle=False))
    data["format_version"] = np.int64(99)
    np.savez_compressed(path, **data)
    with pytest.raises(ValueError, match="version"):
        load_trace(path)


def test_simulation_identical_after_roundtrip(tmp_path):
    from repro.core import BaselineAtomic
    from repro.gpu import RTX3060_SIM, simulate_kernel

    trace = coalesced_trace(n_batches=300, num_params=6, seed=9)
    loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
    original = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
    replayed = simulate_kernel(loaded, RTX3060_SIM, BaselineAtomic())
    assert original.total_cycles == replayed.total_cycles
    assert original.rop_ops == replayed.rop_ops
