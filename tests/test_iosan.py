"""Unit tests for the REPRO_SANITIZE I/O interposition shim.

The end-to-end cross-check against the static process-safety model
lives in ``tests/test_chaos.py``; these tests cover the shim's own
contract -- arming conditions, install/uninstall hygiene, what each
traced primitive records, and how a recorded stream folds back into
(resource class, protocol) observations.
"""

from __future__ import annotations

import builtins
import io
import json
import os

import pytest

from repro.experiments import iosan


@pytest.fixture(autouse=True)
def pristine_shim():
    """Every test starts and ends with the real primitives installed."""
    iosan.uninstall()
    yield
    iosan.uninstall()


def arm(monkeypatch, tmp_path):
    log = tmp_path / "iosan.jsonl"
    monkeypatch.setenv(iosan.SANITIZE_ENV, "1")
    monkeypatch.setenv(iosan.IOSAN_LOG_ENV, str(log))
    return log


# --------------------------------------------------------------------- #
# Arming and install/uninstall hygiene
# --------------------------------------------------------------------- #


def test_enabled_requires_both_env_vars(monkeypatch, tmp_path):
    monkeypatch.delenv(iosan.SANITIZE_ENV, raising=False)
    monkeypatch.delenv(iosan.IOSAN_LOG_ENV, raising=False)
    assert not iosan.enabled()
    monkeypatch.setenv(iosan.SANITIZE_ENV, "1")
    assert not iosan.enabled(), "no log path, nowhere to record"
    monkeypatch.setenv(iosan.IOSAN_LOG_ENV, str(tmp_path / "log.jsonl"))
    assert iosan.enabled()
    monkeypatch.setenv(iosan.SANITIZE_ENV, "0")
    assert not iosan.enabled(), "REPRO_SANITIZE=0 means off"


def test_maybe_install_noop_when_disabled(monkeypatch):
    monkeypatch.delenv(iosan.SANITIZE_ENV, raising=False)
    monkeypatch.delenv(iosan.IOSAN_LOG_ENV, raising=False)
    assert not iosan.maybe_install()
    assert not iosan.installed()
    assert builtins.open is iosan._real_open


def test_install_uninstall_roundtrip(monkeypatch, tmp_path):
    arm(monkeypatch, tmp_path)
    assert iosan.maybe_install()
    assert iosan.installed()
    assert builtins.open is not iosan._real_open
    assert io.open is not iosan._real_io_open
    assert os.open is not iosan._real_os_open
    # Idempotent: a second install does not double-wrap.
    traced = builtins.open
    assert iosan.maybe_install()
    assert builtins.open is traced
    iosan.uninstall()
    assert not iosan.installed()
    assert builtins.open is iosan._real_open
    assert io.open is iosan._real_io_open
    assert os.open is iosan._real_os_open
    assert os.replace is iosan._real_os_replace
    assert os.rename is iosan._real_os_rename


# --------------------------------------------------------------------- #
# What the traced primitives record
# --------------------------------------------------------------------- #


def test_traced_primitives_record_their_protocols(monkeypatch, tmp_path):
    log = arm(monkeypatch, tmp_path)
    target = tmp_path / "data.txt"
    moved = tmp_path / "data-final.txt"
    iosan.maybe_install()
    try:
        with open(target, "w") as handle:
            handle.write("x")
        fd = os.open(
            target, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        os.close(fd)
        os.replace(target, moved)
        # pathlib I/O lands on the traced io.open too.
        moved.write_text("y")
        with open(moved) as handle:
            handle.read()
    finally:
        iosan.uninstall()

    events = iosan.read_log(log)
    by_op = {}
    for event in events:
        by_op.setdefault(event["op"], []).append(event)
    modes = [e["mode"] for e in by_op["open"]]
    assert "w" in modes and "r" in modes
    assert any(
        e["path"] == str(moved) and "w" in e["mode"]
        for e in by_op["open"]
    ), "Path.write_text must be traced through io.open"
    [os_open] = by_op["os.open"]
    assert os_open["flags"] & os.O_APPEND
    [replace] = by_op["replace"]
    assert replace["path"] == str(moved)
    assert replace["src"] == str(target)
    assert all(e["pid"] == os.getpid() for e in events)


def test_recording_survives_unwritable_log(monkeypatch, tmp_path):
    monkeypatch.setenv(iosan.SANITIZE_ENV, "1")
    monkeypatch.setenv(
        iosan.IOSAN_LOG_ENV, str(tmp_path / "no-such-dir" / "log.jsonl")
    )
    iosan.maybe_install()
    try:
        (tmp_path / "out.txt").write_text("x")  # must not raise
    finally:
        iosan.uninstall()


def test_read_log_tolerates_torn_and_missing(tmp_path):
    assert iosan.read_log(tmp_path / "absent.jsonl") == []
    log = tmp_path / "torn.jsonl"
    log.write_text(
        json.dumps({"op": "open", "path": "a", "mode": "w"}) + "\n"
        + '{"op": "open", "path": "b", "mo'  # torn mid-record
    )
    events = iosan.read_log(log)
    assert [e["path"] for e in events] == ["a"]


# --------------------------------------------------------------------- #
# Folding a stream into (resource, protocol) observations
# --------------------------------------------------------------------- #


def test_classify_path_mirrors_static_pattern_table(tmp_path):
    root = tmp_path / "cache"
    obslog = str(tmp_path / "events.jsonl")

    def classify(path):
        return iosan.classify_path(str(path), root, obslog)

    assert classify(root / "results" / "ab" / "abc123.json") \
        == "cache-results"
    assert classify(root / "quarantine" / "ab" / "abc123.json") \
        == "cache-quarantine"
    assert classify(root / "manifests" / "run.jsonl") == "manifest"
    assert classify(obslog) == "obslog"
    # Writer temp files are the private half of atomic-rename.
    assert classify(root / "results" / "ab" / ".abc123-x7.tmp") is None
    assert classify(tmp_path / "elsewhere.txt") is None
    assert classify(root) is None
    assert iosan.classify_path(str(root / "results" / "x.json"),
                               None, None) is None


def test_observed_protocols_folds_and_excludes_temps(tmp_path):
    root = tmp_path / "cache"
    entry = str(root / "results" / "ab" / "abc123.json")
    tmp = str(root / "results" / "ab" / ".abc123-x7.tmp")
    manifest = str(root / "manifests" / "run.jsonl")
    obslog = str(tmp_path / "events.jsonl")
    events = [
        # mkstemp + commit: only the replace is a shared-resource write.
        {"op": "os.open", "path": tmp,
         "flags": os.O_RDWR | os.O_CREAT | os.O_EXCL},
        {"op": "replace", "path": entry, "src": tmp},
        # O_APPEND journal and obslog writes.
        {"op": "os.open", "path": manifest,
         "flags": os.O_WRONLY | os.O_CREAT | os.O_APPEND},
        {"op": "os.open", "path": obslog,
         "flags": os.O_WRONLY | os.O_CREAT | os.O_APPEND},
        # Reads carry no write protocol.
        {"op": "open", "path": entry, "mode": "r"},
        # A torn raw write to a shared entry must surface.
        {"op": "open", "path": entry, "mode": "wb"},
        # Writes outside the modeled roots fold to nothing.
        {"op": "open", "path": str(tmp_path / "scratch.txt"), "mode": "w"},
    ]
    observed = iosan.observed_protocols(events, root, obslog)
    assert observed == {
        ("cache-results", iosan.PROTOCOL_ATOMIC_RENAME),
        ("cache-results", iosan.PROTOCOL_RAW_WRITE),
        ("manifest", iosan.PROTOCOL_APPEND),
        ("obslog", iosan.PROTOCOL_APPEND),
    }


def test_worker_init_installs_shim_when_armed(monkeypatch, tmp_path):
    """_worker_init is the worker-side arming point: after it runs, the
    traced primitives are live in that process."""
    from repro.experiments import faults, parallel

    arm(monkeypatch, tmp_path)
    spool = tmp_path / "spool"
    spool.mkdir()
    monkeypatch.setattr(parallel, "_worker_trace_dir", None)
    monkeypatch.setattr(parallel, "_worker_traces", {})
    # _worker_init also calls faults.mark_worker(); undo that sticky
    # flag so crash/hang faults stay parent-suppressed in later tests.
    monkeypatch.setattr(faults, "_in_worker", faults._in_worker)
    parallel._worker_init(spool, None, False)
    try:
        assert iosan.installed()
    finally:
        iosan.uninstall()
