"""End-to-end gradient checks and training smoke tests for all three
differentiable renderers (3DGS, Pulsar spheres, NvDiffRec cubemaps)."""

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.gaussians import GaussianScene
from repro.render.splatting import GaussianRenderer
from repro.render.spheres import SphereRenderer, SphereScene
from repro.render.texture import Cubemap, CubemapRenderer, procedural_cubemap

RNG = np.random.default_rng(0)


def check_gradients(renderer, scene_params, camera, target, gradients,
                    samples=6, eps=1e-6, rel=2e-4):
    """Central-difference check of a few entries of every gradient array."""
    rng = np.random.default_rng(42)
    for name, analytic in gradients.items():
        flat = scene_params[name].reshape(-1)
        flat_grad = analytic.reshape(-1)
        candidates = np.nonzero(np.abs(flat_grad) > 1e-12)[0]
        if len(candidates) == 0:
            continue
        picks = rng.choice(candidates, size=min(samples, len(candidates)),
                           replace=False)
        for index in picks:
            original = flat[index]
            flat[index] = original + eps
            plus = renderer.loss_only(camera, target)
            flat[index] = original - eps
            minus = renderer.loss_only(camera, target)
            flat[index] = original
            numeric = (plus - minus) / (2 * eps)
            assert flat_grad[index] == pytest.approx(
                numeric, rel=rel, abs=1e-9
            ), f"{name}[{index}]"


class TestGaussianPipeline:
    def setup_method(self):
        self.scene = GaussianScene.random(10, extent=0.6, seed=3,
                                          base_scale=0.15)
        self.camera = Camera.looking_at([0.2, -0.3, -3.0], [0, 0, 0],
                                        width=32, height=32)
        self.target = RNG.uniform(0, 1, (32, 32, 3))
        self.renderer = GaussianRenderer(self.scene)

    def test_full_pipeline_gradients_match_numeric(self):
        context = self.renderer.forward(self.camera)
        result = self.renderer.backward(self.camera, context, self.target)
        check_gradients(self.renderer, self.scene.parameters(), self.camera,
                        self.target, result.gradients)

    def test_loss_positive_for_mismatched_target(self):
        context = self.renderer.forward(self.camera)
        result = self.renderer.backward(self.camera, context, self.target)
        assert result.loss > 0

    def test_render_returns_image(self):
        image = self.renderer.render(self.camera)
        assert image.shape == (32, 32, 3)

    def test_trace_capture_optional(self):
        context = self.renderer.forward(self.camera)
        without = self.renderer.backward(self.camera, context, self.target)
        assert without.trace is None
        context = self.renderer.forward(self.camera)
        with_trace = self.renderer.backward(
            self.camera, context, self.target, capture_trace=True
        )
        assert with_trace.trace is not None
        assert with_trace.trace.bfly_eligible

    def test_gradient_descent_reduces_loss(self):
        from repro.render.optim import Adam
        optimizer = Adam(lr=0.01)
        losses = []
        for _ in range(12):
            context = self.renderer.forward(self.camera)
            result = self.renderer.backward(self.camera, context, self.target)
            optimizer.step(self.scene.parameters(), result.gradients)
            losses.append(result.loss)
        assert losses[-1] < losses[0]


class TestSpherePipeline:
    def setup_method(self):
        self.scene = SphereScene.random(8, extent=0.6, seed=5,
                                        base_radius=0.18)
        self.camera = Camera.looking_at([0.1, 0.2, -3.0], [0, 0, 0],
                                        width=32, height=32)
        self.target = RNG.uniform(0, 1, (32, 32, 3))
        self.renderer = SphereRenderer(self.scene)

    def test_full_pipeline_gradients_match_numeric(self):
        context = self.renderer.forward(self.camera)
        result = self.renderer.backward(self.camera, context, self.target)
        check_gradients(self.renderer, self.scene.parameters(), self.camera,
                        self.target, result.gradients)

    def test_backward_requires_forward(self):
        renderer = SphereRenderer(self.scene)
        context = self.renderer.forward(self.camera)
        with pytest.raises(RuntimeError):
            renderer.backward(self.camera, context, self.target)

    def test_trace_marked_bfly_ineligible(self):
        """Pulsar kernels keep divergence; SW-B must not apply (§7.2)."""
        context = self.renderer.forward(self.camera)
        result = self.renderer.backward(
            self.camera, context, self.target, capture_trace=True
        )
        assert result.trace is not None
        assert not result.trace.bfly_eligible

    def test_scene_validation(self):
        with pytest.raises(ValueError):
            SphereScene.random(0)
        with pytest.raises(ValueError):
            SphereScene(
                centers=np.zeros((2, 3)),
                log_radii=np.zeros(3),
                colors=np.zeros((2, 3)),
                opacity_logits=np.zeros(2),
            )


class TestCubemapPipeline:
    def setup_method(self):
        self.cubemap = Cubemap.constant(12, 0.35)
        self.renderer = CubemapRenderer(self.cubemap)
        self.camera = Camera.looking_at([0, 0, -2.8], [0, 0, 0],
                                        width=32, height=32)
        reference = procedural_cubemap(12, seed=2)
        self.target = CubemapRenderer(reference).forward(self.camera)

    def test_texel_gradients_match_numeric(self):
        image = self.renderer.forward(self.camera)
        _, gradients, _ = self.renderer.backward(
            self.camera, image, self.target
        )
        check_gradients(self.renderer, self.cubemap.parameters(),
                        self.camera, self.target, gradients)

    def test_miss_pixels_show_background(self):
        renderer = CubemapRenderer(
            self.cubemap, background=np.array([0.9, 0.0, 0.0])
        )
        image = renderer.forward(self.camera)
        corner = image[0, 0]
        np.testing.assert_allclose(corner, [0.9, 0.0, 0.0])

    def test_trace_uses_texel_slots(self):
        image = self.renderer.forward(self.camera)
        _, _, trace = self.renderer.backward(
            self.camera, image, self.target, capture_trace=True
        )
        assert trace.num_params == 3
        assert trace.n_slots == self.cubemap.n_texels
        active = trace.lane_slots[trace.lane_slots >= 0]
        assert active.max() < self.cubemap.n_texels

    def test_training_converges(self):
        from repro.render.optim import Adam
        optimizer = Adam(lr=0.05)
        first = last = None
        for _ in range(15):
            image = self.renderer.forward(self.camera)
            loss, gradients, _ = self.renderer.backward(
                self.camera, image, self.target
            )
            optimizer.step(self.cubemap.parameters(), gradients)
            if first is None:
                first = loss
            last = loss
        assert last < first / 2

    def test_cubemap_validation(self):
        with pytest.raises(ValueError):
            Cubemap(np.zeros((5, 4, 4, 3)))
        with pytest.raises(ValueError):
            Cubemap(np.zeros((6, 4, 5, 3)))
        with pytest.raises(ValueError):
            CubemapRenderer(self.cubemap, sphere_radius=0.0)

    def test_procedural_cubemap_in_unit_range(self):
        cubemap = procedural_cubemap(16, seed=9)
        assert cubemap.texels.min() >= 0.0
        assert cubemap.texels.max() <= 1.0
