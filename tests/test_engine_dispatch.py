"""Tests for the engine's greedy warp dispatch and program ordering."""

import dataclasses

import numpy as np

from repro.core import BaselineAtomic
from repro.core.base import AtomicStrategy, BatchPlan
from repro.gpu import RTX4090_SIM, simulate_kernel
from repro.gpu.warp import WARP_SIZE
from repro.trace import KernelTrace


class RecordingStrategy(AtomicStrategy):
    """Records (batch index, subcore, time) for dispatch assertions."""

    name = "recording"

    def __init__(self):
        self.events = []

    def begin_kernel(self, trace, config):
        self.events = []

    def plan_batch(self, batch, engine):
        self.events.append((batch.index, batch.subcore, engine.now))
        return BatchPlan(issue_cycles=1.0)


def tiny_gpu(subcores=4):
    return dataclasses.replace(
        RTX4090_SIM, name="tiny", num_sms=subcores, subcores_per_sm=1,
        num_rops=4, num_partitions=2, interconnect_bw=4.0,
    )


def trace_with_warps(warp_ids, compute=10.0):
    warp_ids = np.asarray(warp_ids)
    lanes = np.zeros((len(warp_ids), WARP_SIZE), dtype=np.int64)
    return KernelTrace(
        lanes, num_params=1, n_slots=1, warp_id=warp_ids,
        compute_cycles=compute,
    )


def test_per_warp_program_order_preserved():
    """Batches of one warp execute in trace order on one sub-core."""
    trace = trace_with_warps([0, 1, 0, 1, 0, 1])
    strategy = RecordingStrategy()
    simulate_kernel(trace, tiny_gpu(subcores=2), strategy)
    by_subcore = {}
    for index, subcore, _ in strategy.events:
        by_subcore.setdefault(subcore, []).append(index)
    # Each warp's batch indices appear in increasing trace order.
    for indices in by_subcore.values():
        assert indices == sorted(indices)
    # The two warps land on two different sub-cores.
    assert len(by_subcore) == 2


def test_greedy_dispatch_balances_uneven_warps():
    """A long warp must not leave other sub-cores idle: short warps are
    redistributed to whoever frees up first."""
    # Warp 0 has 30 batches; warps 1..6 have 2 each.  Two sub-cores.
    warp_ids = [0] * 30 + [w for w in range(1, 7) for _ in range(2)]
    trace = trace_with_warps(warp_ids, compute=10.0)
    strategy = RecordingStrategy()
    simulate_kernel(trace, tiny_gpu(subcores=2), strategy)
    counts = {}
    for _, subcore, _ in strategy.events:
        counts[subcore] = counts.get(subcore, 0) + 1
    # Perfect split would be 21/21; greedy gets within one warp of it.
    assert max(counts.values()) <= 30  # long warp stays on one sub-core
    assert min(counts.values()) >= 12  # the other picks up all short ones


def test_more_subcores_than_warps_leaves_spares_idle():
    trace = trace_with_warps([0, 0, 1, 1])
    strategy = RecordingStrategy()
    simulate_kernel(trace, tiny_gpu(subcores=8), strategy)
    used = {subcore for _, subcore, _ in strategy.events}
    assert len(used) == 2


def test_dispatch_times_monotone_per_subcore():
    trace = trace_with_warps([0, 1, 2, 0, 1, 2, 0, 1, 2])
    strategy = RecordingStrategy()
    simulate_kernel(trace, tiny_gpu(subcores=3), strategy)
    by_subcore = {}
    for _, subcore, now in strategy.events:
        by_subcore.setdefault(subcore, []).append(now)
    for times in by_subcore.values():
        assert times == sorted(times)


def test_total_time_benefits_from_redistribution():
    """Greedy dispatch beats the static modulo assignment it replaced."""
    # 64 compute-only warps of wildly uneven length on 4 sub-cores.
    rng = np.random.default_rng(0)
    lengths = rng.integers(1, 40, size=64)
    warp_ids = np.repeat(np.arange(64), lengths)
    lanes = np.full((len(warp_ids), WARP_SIZE), -1, dtype=np.int64)
    trace = KernelTrace(
        lanes, num_params=1, n_slots=1, warp_id=warp_ids,
        compute_cycles=25.0,
    )
    result = simulate_kernel(trace, tiny_gpu(subcores=4), BaselineAtomic())
    ideal = 25.0 * len(warp_ids) / 4
    # Within 1.5x of the perfectly balanced makespan despite warp skew
    # (static modulo assignment lands far worse on this distribution).
    assert result.total_cycles < 1.5 * ideal
