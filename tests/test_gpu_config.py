"""Tests for repro.gpu.config: presets, validation, derived quantities."""

import dataclasses

import pytest

from repro.gpu import RTX3060_SIM, RTX4090_SIM, SIMULATED_GPUS, CostModel, GPUConfig


def test_presets_match_paper_table1():
    assert RTX4090_SIM.num_sms == 128
    assert RTX4090_SIM.num_rops == 176
    assert RTX4090_SIM.subcores_per_sm == 4
    assert RTX4090_SIM.clock_ghz == pytest.approx(2.24)
    assert RTX4090_SIM.l2_mib == pytest.approx(72.0)
    assert RTX3060_SIM.num_sms == 28
    assert RTX3060_SIM.num_rops == 48
    assert RTX3060_SIM.clock_ghz == pytest.approx(1.32)
    assert RTX3060_SIM.l2_mib == pytest.approx(3.0)


def test_sm_to_rop_ratio_is_worse_on_4090():
    """§3.2: the 4090 has 4.57x the SMs but only 3.6x the ROPs."""
    assert RTX4090_SIM.num_sms / RTX3060_SIM.num_sms == pytest.approx(4.57, abs=0.01)
    assert RTX4090_SIM.num_rops / RTX3060_SIM.num_rops == pytest.approx(3.67, abs=0.01)
    assert RTX4090_SIM.sm_to_rop_ratio > RTX3060_SIM.sm_to_rop_ratio


def test_num_subcores():
    assert RTX4090_SIM.num_subcores == 128 * 4
    assert RTX3060_SIM.num_subcores == 28 * 4


def test_rops_per_partition_divides_evenly():
    for gpu in SIMULATED_GPUS.values():
        assert gpu.rops_per_partition * gpu.num_partitions == gpu.num_rops


def test_cycles_to_ms():
    assert RTX4090_SIM.cycles_to_ms(2.24e6) == pytest.approx(1.0)
    assert RTX3060_SIM.cycles_to_ms(1.32e6) == pytest.approx(1.0)


def test_with_cost_override_returns_new_config():
    tweaked = RTX4090_SIM.with_cost(atomic_service=9.0)
    assert tweaked.cost.atomic_service == 9.0
    assert RTX4090_SIM.cost.atomic_service != 9.0
    assert tweaked.num_sms == RTX4090_SIM.num_sms


def test_config_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        RTX4090_SIM.num_sms = 1


@pytest.mark.parametrize(
    "field,value",
    [
        ("num_sms", 0),
        ("num_rops", 0),
        ("lsu_queue_depth", 0),
        ("interconnect_bw", 0.0),
    ],
)
def test_invalid_configs_rejected(field, value):
    with pytest.raises(ValueError):
        dataclasses.replace(RTX4090_SIM, **{field: value})


def test_rop_partition_mismatch_rejected():
    with pytest.raises(ValueError):
        dataclasses.replace(RTX4090_SIM, num_rops=177)


def test_default_cost_model_values_positive():
    cost = CostModel()
    for f in dataclasses.fields(cost):
        assert getattr(cost, f.name) > 0, f.name


def test_simulated_gpus_registry_keys():
    assert set(SIMULATED_GPUS) == {"4090-Sim", "3060-Sim"}
    for name, gpu in SIMULATED_GPUS.items():
        assert isinstance(gpu, GPUConfig)
        assert gpu.name == name


def test_fingerprint_memoized_per_instance():
    """The digest is computed once and cached on the (frozen) instance:
    in-memory memoization keys on it for every get_result call, so it
    must stay a cheap attribute read, and the cache must not leak into
    field-based equality or serialization."""
    config = dataclasses.replace(RTX4090_SIM)
    first = config.fingerprint()
    assert config.fingerprint() is first  # cached, not recomputed
    assert first == RTX4090_SIM.fingerprint()  # content, not identity
    assert "_fingerprint" not in config.to_dict()
    assert config == dataclasses.replace(RTX4090_SIM)


def test_fingerprint_cache_not_inherited_by_copies():
    config = dataclasses.replace(RTX4090_SIM)
    config.fingerprint()
    ablated = config.with_cost(atomic_service=99.0)
    assert ablated.fingerprint() != config.fingerprint()
