"""Tests for SimResult derived metrics and the energy model."""

import pytest

from repro.gpu import RTX3060_SIM, RTX4090_SIM, SimResult


def make_result(**overrides):
    params = dict(
        strategy="test", gpu="4090-Sim", trace_name="t",
        total_cycles=1000.0, compute_cycles=400.0, issue_cycles=100.0,
        lsu_stall_cycles=300.0, local_unit_stall_cycles=200.0,
        rop_ops=5000, transactions=600, shuffle_ops=0,
    )
    params.update(overrides)
    return SimResult(**params)


class TestDerived:
    def test_busy_and_stall_cycles(self):
        result = make_result()
        assert result.busy_cycles == 500.0
        assert result.stall_cycles == 500.0
        assert result.atomic_stall_cycles == 500.0

    def test_stalls_per_instruction(self):
        result = make_result()
        assert result.stalls_per_instruction == pytest.approx(1.0)

    def test_empty_result_guards(self):
        empty = SimResult(strategy="s", gpu="g")
        assert empty.stalls_per_instruction == 0.0
        assert sum(empty.stall_breakdown().values()) == 0.0

    def test_breakdown_sums_to_one(self):
        fractions = make_result().stall_breakdown()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["lsu_stall"] == pytest.approx(0.3)
        assert fractions["local_unit_stall"] == pytest.approx(0.2)

    def test_speedup_over(self):
        fast = make_result(total_cycles=500.0)
        slow = make_result(total_cycles=2000.0)
        assert fast.speedup_over(slow) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            SimResult(strategy="s", gpu="g").speedup_over(fast)

    def test_summary_mentions_key_numbers(self):
        text = make_result().summary()
        assert "1,000" in text
        assert "test" in text


class TestEnergy:
    def test_components_additive(self):
        """Each activity term contributes its per-op energy."""
        base = make_result(rop_ops=0, transactions=0, compute_cycles=0.0,
                           issue_cycles=0.0, total_cycles=0.0)
        with_rops = make_result(rop_ops=1000, transactions=0,
                                compute_cycles=0.0, issue_cycles=0.0,
                                total_cycles=0.0)
        delta = (
            with_rops.energy_joules(RTX4090_SIM)
            - base.energy_joules(RTX4090_SIM)
        )
        expected = 1000 * RTX4090_SIM.energy.rop_op_pj * 1e-12
        assert delta == pytest.approx(expected)

    def test_static_term_scales_with_runtime(self):
        short = make_result(total_cycles=1e6, rop_ops=0, transactions=0,
                            compute_cycles=0, issue_cycles=0,
                            lsu_stall_cycles=0, local_unit_stall_cycles=0)
        long = make_result(total_cycles=2e6, rop_ops=0, transactions=0,
                           compute_cycles=0, issue_cycles=0,
                           lsu_stall_cycles=0, local_unit_stall_cycles=0)
        ratio = (
            long.energy_joules(RTX4090_SIM)
            / short.energy_joules(RTX4090_SIM)
        )
        assert ratio == pytest.approx(2.0)

    def test_runtime_conversion_per_gpu(self):
        result = make_result(total_cycles=1.32e6)
        assert result.runtime_ms(RTX3060_SIM) == pytest.approx(1.0)
        assert result.runtime_ms(RTX4090_SIM) < 1.0  # faster clock
