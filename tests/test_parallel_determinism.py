"""Determinism of the parallel experiment runner.

The contract under test: ``run_matrix`` executed serially, in parallel
with 2 and 4 workers, and from a warm disk cache all yield bit-identical
``SimResult`` fields for every cell -- and a warm-cache rerun performs
zero calls to ``simulate_kernel``.

The fast tests drive a synthetic two-workload registry (one coalesced and
butterfly-eligible, one scattered and divergent) across both simulated
GPUs; a quick real-workload slice uses NV-SP.  Set
``REPRO_FULL_DETERMINISM=1`` to additionally run the full Figure 22
workload set with 4 workers (minutes of runtime).
"""

import os

import pytest

from repro.experiments import diskcache, runner
from repro.experiments.parallel import (
    plan_cells,
    run_matrix_parallel,
)
from repro.experiments.runner import (
    SWEEP_THRESHOLDS,
    clear_caches,
    run_matrix,
)
from repro.trace import coalesced_trace, scattered_trace
from repro.workloads import WORKLOAD_KEYS

STRATEGIES = ["baseline", "ARC-HW", "ARC-SW-B-8", "ARC-SW-S-16",
              "CCCL", "LAB"]
GPUS = ["3060-Sim", "4090-Sim"]


class FakeWorkload:
    """Deterministic synthetic stand-in for a Table 2 workload."""

    def __init__(self, key, bfly=True):
        self.key = key
        self._bfly = bfly

    def capture_trace(self):
        factory = coalesced_trace if self._bfly else scattered_trace
        return factory(n_batches=300, num_params=4, seed=11, name=self.key)


@pytest.fixture
def fake_registry(monkeypatch):
    fakes = {"P1": FakeWorkload("P1"), "P2": FakeWorkload("P2", bfly=False)}
    monkeypatch.setattr(runner, "load_workload", lambda key: fakes[key])
    return fakes


def cell_tuples(cells):
    """Full content of every cell, in order, for exact comparison."""
    return [
        (c.workload, c.gpu, c.strategy, c.result.to_dict()) for c in cells
    ]


def test_parallel_2_and_4_workers_match_serial(fake_registry):
    diskcache.configure(enabled=False)  # force genuine simulation
    serial = run_matrix(["P1", "P2"], STRATEGIES, GPUS)
    assert serial, "empty matrix would make this test vacuous"
    for jobs in (2, 4):
        clear_caches()
        parallel = run_matrix_parallel(
            ["P1", "P2"], STRATEGIES, GPUS, jobs=jobs
        )
        assert cell_tuples(parallel) == cell_tuples(serial), jobs
        for before, after in zip(serial, parallel):
            assert after.result.total_cycles == before.result.total_cycles
            assert (after.result.lsu_stall_cycles
                    == before.result.lsu_stall_cycles)
            assert (after.result.local_unit_stall_cycles
                    == before.result.local_unit_stall_cycles)
            assert (after.result.lsu_full_events
                    == before.result.lsu_full_events)


def test_warm_disk_cache_is_identical_and_never_simulates(
    fake_registry, monkeypatch
):
    cold = run_matrix_parallel(["P1", "P2"], STRATEGIES, GPUS, jobs=2)
    clear_caches()  # drop memory; the per-test disk cache stays warm

    calls = []
    monkeypatch.setattr(
        runner, "simulate_kernel",
        lambda *a, **k: calls.append(a) or pytest.fail(
            "warm-cache rerun must not reach simulate_kernel"
        ),
    )
    warm = run_matrix(["P1", "P2"], STRATEGIES, GPUS)
    assert calls == []
    assert cell_tuples(warm) == cell_tuples(cold)


def test_parallel_seeds_parent_memory_cache(fake_registry, monkeypatch):
    cells = run_matrix_parallel(["P1"], ["baseline", "ARC-HW"],
                                ["3060-Sim"], jobs=2)
    monkeypatch.setattr(
        runner, "simulate_kernel",
        lambda *a, **k: pytest.fail("cell should come from memory"),
    )
    followup = runner.get_result("P1", "3060-Sim", "ARC-HW")
    assert followup is cells[-1].result


def test_plan_matches_serial_cell_order(fake_registry):
    serial = run_matrix(["P1", "P2"], STRATEGIES, GPUS)
    specs = plan_cells(["P1", "P2"], STRATEGIES, GPUS)
    assert [(s.workload, s.gpu.name, s.strategy) for s in specs] == [
        (c.workload, c.gpu, c.strategy) for c in serial
    ]
    # The divergent workload's SW-B cells are skipped, like serial.
    assert all(
        not (s.workload == "P2" and "SW-B" in s.strategy) for s in specs
    )


def test_jobs_validation_and_serial_delegation(fake_registry):
    with pytest.raises(ValueError):
        run_matrix_parallel(["P1"], ["baseline"], ["3060-Sim"], jobs=0)
    with pytest.raises(KeyError):
        run_matrix_parallel(["P1"], ["warp-magic"], ["3060-Sim"], jobs=2)
    serial = run_matrix_parallel(["P1"], ["baseline"], ["3060-Sim"], jobs=1)
    assert cell_tuples(serial) == cell_tuples(
        run_matrix(["P1"], ["baseline"], ["3060-Sim"])
    )


def test_real_workload_slice_parallel_determinism():
    """Serial vs 2-worker parallel on a real (fast) Table 2 workload."""
    diskcache.configure(enabled=False)
    workloads, strategies, gpus = ["NV-SP"], ["baseline", "ARC-HW",
                                              "ARC-SW-S-8"], ["3060-Sim"]
    serial = run_matrix(workloads, strategies, gpus)
    clear_caches()
    parallel = run_matrix_parallel(workloads, strategies, gpus, jobs=2)
    assert cell_tuples(parallel) == cell_tuples(serial)


@pytest.mark.skipif(
    not os.environ.get("REPRO_FULL_DETERMINISM"),
    reason="full Figure 22 determinism sweep is minutes long; "
    "set REPRO_FULL_DETERMINISM=1 to run it",
)
def test_fig22_workload_set_with_4_workers(monkeypatch):
    """The acceptance bar: the full Figure 22 workload set, 4 workers,
    identical to serial; then a warm-cache rerun with zero simulations."""
    strategies = ["baseline"] + [
        f"ARC-SW-{variant}-{threshold}"
        for variant in ("B", "S")
        for threshold in SWEEP_THRESHOLDS
    ]
    workloads = list(WORKLOAD_KEYS)
    test_cache_dir = diskcache.active_cache().root  # conftest's tmp dir
    diskcache.configure(enabled=False)
    serial = run_matrix(workloads, strategies, GPUS)
    clear_caches()
    diskcache.configure(root=test_cache_dir)

    parallel = run_matrix_parallel(workloads, strategies, GPUS, jobs=4)
    assert cell_tuples(parallel) == cell_tuples(serial)

    clear_caches()
    calls = []
    monkeypatch.setattr(
        runner, "simulate_kernel",
        lambda *a, **k: calls.append(a) or pytest.fail("must hit cache"),
    )
    warm = run_matrix(workloads, strategies, GPUS)
    assert calls == []
    assert cell_tuples(warm) == cell_tuples(serial)
