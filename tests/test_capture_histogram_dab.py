"""Tests for generic trace capture, the histogram workload, and DAB."""

import numpy as np
import pytest

from repro.core import DAB, LAB
from repro.gpu import RTX3060_SIM, simulate_kernel
from repro.gpu.warp import WARP_SIZE
from repro.trace import (
    INACTIVE,
    pixel_to_warp_lane,
    trace_from_scatter,
    trace_from_tiled_image,
)
from repro.trace.analysis import intra_warp_locality
from repro.workloads import HistogramWorkload


class TestScatterCapture:
    def test_threads_pack_into_warps(self):
        destinations = np.arange(70) % 5
        trace = trace_from_scatter(destinations, n_slots=5)
        assert trace.n_batches == 3  # ceil(70 / 32)
        assert trace.active_lane_counts.tolist() == [32, 32, 6]

    def test_inactive_threads_respected(self):
        destinations = np.array([1, INACTIVE, 2, INACTIVE])
        trace = trace_from_scatter(destinations, n_slots=3)
        assert trace.active_lane_counts[0] == 2

    def test_values_roundtrip(self):
        destinations = np.array([0, 1, 0, 1])
        values = np.array([[1.0], [2.0], [3.0], [4.0]])
        trace = trace_from_scatter(
            destinations, n_slots=2, values=values
        )
        sums = trace.reference_sums()
        assert sums[0, 0] == 4.0
        assert sums[1, 0] == 6.0

    def test_value_shape_checked(self):
        with pytest.raises(ValueError):
            trace_from_scatter(
                np.array([0, 1]), n_slots=2, values=np.zeros((3, 1))
            )

    def test_non_flat_rejected(self):
        with pytest.raises(ValueError):
            trace_from_scatter(np.zeros((2, 2), dtype=int), n_slots=1)


class TestTiledCapture:
    def test_pixel_mapping_matches_cuda_layout(self):
        # Pixel (0, 0) is lane 0 of warp 0; pixel (15, 1) ends warp 0.
        warp, lane = pixel_to_warp_lane(
            np.array([0, 15, 0, 0]), np.array([0, 1, 2, 15]), width=32
        )
        assert warp[0] == 0 and lane[0] == 0
        assert warp[1] == 0 and lane[1] == 31
        assert warp[2] == 1 and lane[2] == 0   # row 2 starts warp 1
        assert warp[3] == 7                     # last row of the tile

    def test_second_tile_gets_new_warps(self):
        warp, _ = pixel_to_warp_lane(
            np.array([16]), np.array([0]), width=32
        )
        assert warp[0] == 8  # 8 warps per 16x16 tile

    def test_width_validation(self):
        with pytest.raises(ValueError):
            pixel_to_warp_lane(np.array([0]), np.array([0]), width=30)

    def test_smooth_image_has_high_locality(self):
        height = width = 64
        ys, xs = np.meshgrid(np.arange(height), np.arange(width),
                             indexing="ij")
        smooth = (xs // 32) + 2 * (ys // 32)   # 4 giant constant regions
        trace = trace_from_tiled_image(smooth, n_slots=4)
        assert intra_warp_locality(trace) == 1.0

    def test_noisy_image_has_low_locality(self):
        rng = np.random.default_rng(0)
        noisy = rng.integers(0, 1000, size=(64, 64))
        trace = trace_from_tiled_image(noisy, n_slots=1000)
        assert intra_warp_locality(trace) < 0.01

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            trace_from_tiled_image(np.zeros((60, 64), dtype=int), n_slots=1)
        with pytest.raises(ValueError):
            trace_from_tiled_image(np.zeros(64, dtype=int), n_slots=1)


class TestHistogram:
    def test_reference_counts(self):
        workload = HistogramWorkload(n_elements=5000, n_bins=64, seed=1)
        histogram = workload.reference_histogram()
        assert histogram.sum() == 5000
        assert len(histogram) == 64

    def test_trace_values_reproduce_histogram(self):
        workload = HistogramWorkload(n_elements=3000, n_bins=32, seed=2)
        trace = workload.capture_trace(with_values=True)
        sums = trace.reference_sums()[:, 0]
        np.testing.assert_array_equal(
            sums.astype(int), workload.reference_histogram()
        )

    def test_smoothness_raises_locality(self):
        """A slowly varying signal keeps whole warps in one bin."""
        noisy = HistogramWorkload(n_elements=50_000, n_bins=8,
                                  smoothness=1, seed=3)
        smooth = HistogramWorkload(n_elements=50_000, n_bins=8,
                                   smoothness=2000, seed=3)
        assert (
            intra_warp_locality(smooth.capture_trace())
            > intra_warp_locality(noisy.capture_trace()) + 0.2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            HistogramWorkload(n_elements=0)
        with pytest.raises(ValueError):
            HistogramWorkload(smoothness=0)


class TestDAB:
    def make_trace(self):
        from repro.trace import coalesced_trace
        return coalesced_trace(
            n_batches=4000, n_slots=300, num_params=9, mean_active=12,
            seed=4,
        )

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            DAB(epoch_batches=0)

    def test_determinism_costs_more_than_lab(self):
        trace = self.make_trace()
        lab = simulate_kernel(trace, RTX3060_SIM, LAB())
        dab = simulate_kernel(trace, RTX3060_SIM, DAB())
        assert dab.total_cycles > lab.total_cycles

    def test_epoch_flushes_increase_rop_traffic(self):
        trace = self.make_trace()
        rare = simulate_kernel(trace, RTX3060_SIM, DAB(epoch_batches=512))
        frequent = simulate_kernel(trace, RTX3060_SIM, DAB(epoch_batches=8))
        assert frequent.rop_ops > rare.rop_ops

    def test_preserves_sums(self):
        from repro.core.functional import (
            accumulate_with_strategy,
            max_relative_error,
        )
        from repro.trace import coalesced_trace
        trace = coalesced_trace(n_batches=50, num_params=3, seed=5,
                                with_values=True)
        result = accumulate_with_strategy(trace, DAB())
        assert max_relative_error(result, trace.reference_sums()) < 1e-9
