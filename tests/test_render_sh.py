"""Tests for degree-1 spherical-harmonics color (view-dependent 3DGS)."""

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.gaussians import GaussianScene
from repro.render.sh import (
    N_SH_COEFFS,
    SH_C0,
    SHGaussianScene,
    eval_sh_backward,
    eval_sh_colors,
    sh_from_rgb,
)
from repro.render.splatting import GaussianRenderer


def unit_setup(n=5, seed=0):
    rng = np.random.default_rng(seed)
    coeffs = rng.normal(scale=0.3, size=(n, N_SH_COEFFS, 3))
    positions = rng.normal(scale=0.5, size=(n, 3))
    camera_position = np.array([0.0, 0.0, -3.0])
    return coeffs, positions, camera_position


class TestEval:
    def test_band0_reproduces_rgb(self):
        colors = np.array([[0.2, 0.5, 0.9], [0.0, 1.0, 0.4]])
        coeffs = sh_from_rgb(colors)
        evaluated, _ = eval_sh_colors(
            coeffs, np.zeros((2, 3)), np.array([0.0, 0.0, -3.0])
        )
        np.testing.assert_allclose(evaluated, colors, atol=1e-12)

    def test_sh_from_rgb_shape_checked(self):
        with pytest.raises(ValueError):
            sh_from_rgb(np.zeros((2, 4)))

    def test_coeff_shape_checked(self):
        with pytest.raises(ValueError):
            eval_sh_colors(np.zeros((2, 3, 3)), np.zeros((2, 3)),
                           np.zeros(3))

    def test_view_dependence(self):
        """Band-1 coefficients make color change with viewpoint."""
        coeffs = np.zeros((1, N_SH_COEFFS, 3))
        coeffs[0, 0] = 0.5 / SH_C0  # base gray
        coeffs[0, 3, 0] = 1.0       # red varies along x
        position = np.zeros((1, 3))
        from_left, _ = eval_sh_colors(
            coeffs, position, np.array([-3.0, 0.0, 0.0])
        )
        from_right, _ = eval_sh_colors(
            coeffs, position, np.array([3.0, 0.0, 0.0])
        )
        assert from_left[0, 0] != pytest.approx(from_right[0, 0])
        assert from_left[0, 1] == pytest.approx(from_right[0, 1])

    def test_clamp_at_zero(self):
        coeffs = np.zeros((1, N_SH_COEFFS, 3))
        coeffs[0, 0] = -10.0  # strongly negative pre-clamp
        colors, pre_clamp = eval_sh_colors(
            coeffs, np.zeros((1, 3)), np.array([0.0, 0.0, -3.0])
        )
        assert (colors == 0.0).all()
        assert (pre_clamp < 0).all()

    def test_backward_matches_numeric(self):
        coeffs, positions, camera_position = unit_setup()
        rng = np.random.default_rng(1)
        upstream = rng.standard_normal((5, 3))

        def loss(c, p):
            colors, _ = eval_sh_colors(c, p, camera_position)
            return float(np.sum(colors * upstream))

        _, pre_clamp = eval_sh_colors(coeffs, positions, camera_position)
        grad_coeffs, grad_positions = eval_sh_backward(
            coeffs, positions, camera_position, pre_clamp, upstream
        )
        eps = 1e-6
        flat_c = coeffs.reshape(-1)
        for index in rng.choice(flat_c.size, size=10, replace=False):
            original = flat_c[index]
            flat_c[index] = original + eps
            plus = loss(coeffs, positions)
            flat_c[index] = original - eps
            minus = loss(coeffs, positions)
            flat_c[index] = original
            numeric = (plus - minus) / (2 * eps)
            assert grad_coeffs.reshape(-1)[index] == pytest.approx(
                numeric, rel=1e-5, abs=1e-9
            )
        flat_p = positions.reshape(-1)
        for index in rng.choice(flat_p.size, size=8, replace=False):
            original = flat_p[index]
            flat_p[index] = original + eps
            plus = loss(coeffs, positions)
            flat_p[index] = original - eps
            minus = loss(coeffs, positions)
            flat_p[index] = original
            numeric = (plus - minus) / (2 * eps)
            assert grad_positions.reshape(-1)[index] == pytest.approx(
                numeric, rel=1e-4, abs=1e-9
            )


class TestSHScene:
    def test_from_scene_preserves_appearance(self):
        scene = GaussianScene.random(6, seed=2)
        sh_scene = SHGaussianScene.from_scene(scene)
        camera = Camera.looking_at([0, 0, -3.0], [0, 0, 0],
                                   width=32, height=32)
        static = GaussianRenderer(scene).render(camera)
        view_dep = GaussianRenderer(sh_scene).render(camera)
        np.testing.assert_allclose(view_dep, static, atol=1e-9)

    def test_parameters_swap_colors_for_coeffs(self):
        sh_scene = SHGaussianScene.from_scene(GaussianScene.random(3, seed=3))
        params = sh_scene.parameters()
        assert "sh_coeffs" in params
        assert "colors" not in params

    def test_shape_validation(self):
        scene = GaussianScene.random(3, seed=4)
        with pytest.raises(ValueError):
            SHGaussianScene(
                positions=scene.positions,
                log_scales=scene.log_scales,
                quaternions=scene.quaternions,
                colors=scene.colors,
                opacity_logits=scene.opacity_logits,
                sh_coeffs=np.zeros((3, 2, 3)),
            )

    def test_full_pipeline_sh_gradients_match_numeric(self):
        rng = np.random.default_rng(5)
        sh_scene = SHGaussianScene.from_scene(
            GaussianScene.random(8, extent=0.5, seed=5, base_scale=0.15)
        )
        sh_scene.sh_coeffs[:, 1:] = rng.normal(
            scale=0.15, size=(8, N_SH_COEFFS - 1, 3)
        )
        camera = Camera.looking_at([0.4, -0.2, -3.0], [0, 0, 0],
                                   width=32, height=32)
        target = rng.uniform(0, 1, (32, 32, 3))
        renderer = GaussianRenderer(sh_scene)
        context = renderer.forward(camera)
        result = renderer.backward(camera, context, target)
        assert "sh_coeffs" in result.gradients

        eps = 1e-6
        for name, analytic in result.gradients.items():
            flat = sh_scene.parameters()[name].reshape(-1)
            flat_grad = analytic.reshape(-1)
            candidates = np.nonzero(np.abs(flat_grad) > 1e-12)[0]
            picks = rng.choice(candidates,
                               size=min(6, len(candidates)), replace=False)
            for index in picks:
                original = flat[index]
                flat[index] = original + eps
                plus = renderer.loss_only(camera, target)
                flat[index] = original - eps
                minus = renderer.loss_only(camera, target)
                flat[index] = original
                numeric = (plus - minus) / (2 * eps)
                assert flat_grad[index] == pytest.approx(
                    numeric, rel=3e-4, abs=1e-9
                ), f"{name}[{index}]"

    def test_sh_training_reduces_loss(self):
        from repro.render.optim import Adam
        rng = np.random.default_rng(6)
        sh_scene = SHGaussianScene.from_scene(
            GaussianScene.random(15, extent=0.5, seed=7, base_scale=0.15)
        )
        camera = Camera.looking_at([0, 0, -3.0], [0, 0, 0],
                                   width=32, height=32)
        target = rng.uniform(0, 1, (32, 32, 3))
        renderer = GaussianRenderer(sh_scene)
        optimizer = Adam(lr=0.02)
        losses = []
        for _ in range(12):
            context = renderer.forward(camera)
            result = renderer.backward(camera, context, target)
            optimizer.step(sh_scene.parameters(), result.gradients)
            losses.append(result.loss)
        assert losses[-1] < losses[0]
