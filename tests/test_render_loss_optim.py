"""Tests for image losses/metrics and optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.render.loss import l1_loss, l1_loss_grad, mse, psnr, ssim
from repro.render.optim import SGD, Adam

images = hnp.arrays(
    np.float64, (8, 8, 3),
    elements=st.floats(min_value=0, max_value=1),
)


class TestLoss:
    def test_l1_zero_for_identical(self):
        image = np.random.default_rng(0).uniform(size=(4, 4, 3))
        assert l1_loss(image, image) == 0.0

    def test_l1_known_value(self):
        a = np.zeros((2, 2, 3))
        b = np.full((2, 2, 3), 0.5)
        assert l1_loss(a, b) == pytest.approx(0.5)

    def test_l1_grad_matches_numeric(self):
        rng = np.random.default_rng(1)
        rendered = rng.uniform(size=(3, 3, 3))
        target = rng.uniform(size=(3, 3, 3))
        grad = l1_loss_grad(rendered, target)
        eps = 1e-7
        flat = rendered.reshape(-1)
        for i in (0, 7, 26):
            original = flat[i]
            flat[i] = original + eps
            plus = l1_loss(rendered, target)
            flat[i] = original - eps
            minus = l1_loss(rendered, target)
            flat[i] = original
            assert grad.reshape(-1)[i] == pytest.approx(
                (plus - minus) / (2 * eps), abs=1e-9
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            l1_loss(np.zeros((2, 2, 3)), np.zeros((3, 2, 3)))
        with pytest.raises(ValueError):
            l1_loss(np.zeros((0, 2, 3)), np.zeros((0, 2, 3)))

    def test_psnr_infinite_for_identical(self):
        image = np.random.default_rng(2).uniform(size=(4, 4, 3))
        assert psnr(image, image) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros((4, 4, 3))
        b = np.full((4, 4, 3), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(3)
        clean = rng.uniform(size=(16, 16, 3))
        assert psnr(clean + 0.01, clean) > psnr(clean + 0.1, clean)

    def test_ssim_bounds_and_identity(self):
        rng = np.random.default_rng(4)
        image = rng.uniform(size=(24, 24, 3))
        assert ssim(image, image) == pytest.approx(1.0, abs=1e-9)
        noisy = np.clip(image + rng.normal(scale=0.3, size=image.shape), 0, 1)
        assert ssim(image, noisy) < 1.0

    def test_ssim_window_validation(self):
        image = np.zeros((16, 16, 3))
        with pytest.raises(ValueError):
            ssim(image, image, window=4)
        with pytest.raises(ValueError):
            ssim(image, image, window=1)

    @given(images, images)
    @settings(max_examples=25, deadline=None)
    def test_metric_properties(self, a, b):
        assert l1_loss(a, b) >= 0
        assert l1_loss(a, b) == pytest.approx(l1_loss(b, a))
        assert mse(a, b) >= 0


class TestOptim:
    def make_problem(self):
        params = {"w": np.array([2.0, -3.0])}
        grads = lambda: {"w": 2 * params["w"]}  # d/dw of |w|^2
        return params, grads

    def test_sgd_step_direction(self):
        params, grads = self.make_problem()
        SGD(lr=0.1).step(params, grads())
        np.testing.assert_allclose(params["w"], [1.6, -2.4])

    def test_sgd_momentum_accumulates(self):
        params, grads = self.make_problem()
        optimizer = SGD(lr=0.1, momentum=0.9)
        first = params["w"].copy()
        optimizer.step(params, {"w": np.array([1.0, 0.0])})
        step1 = first - params["w"]
        optimizer.step(params, {"w": np.array([1.0, 0.0])})
        step2 = (first - params["w"]) - step1
        assert step2[0] > step1[0]  # momentum grows the step

    def test_sgd_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)

    def test_adam_converges_on_quadratic(self):
        params, grads = self.make_problem()
        optimizer = Adam(lr=0.3)
        for _ in range(150):
            optimizer.step(params, grads())
        np.testing.assert_allclose(params["w"], [0.0, 0.0], atol=1e-3)

    def test_adam_lr_overrides(self):
        params = {"a": np.array([1.0]), "b": np.array([1.0])}
        optimizer = Adam(lr=0.1, lr_overrides={"b": 0.0001})
        optimizer.step(params, {"a": np.array([1.0]), "b": np.array([1.0])})
        assert abs(1.0 - params["a"][0]) > abs(1.0 - params["b"][0])

    def test_missing_gradient_skipped(self):
        params = {"a": np.array([1.0]), "b": np.array([1.0])}
        Adam(lr=0.1).step(params, {"a": np.array([1.0])})
        assert params["b"][0] == 1.0
        assert params["a"][0] != 1.0

    def test_shape_mismatch_rejected(self):
        params = {"a": np.zeros(2)}
        with pytest.raises(ValueError):
            Adam().step(params, {"a": np.zeros(3)})
        with pytest.raises(ValueError):
            SGD().step(params, {"a": np.zeros(3)})

    def test_adam_validation(self):
        with pytest.raises(ValueError):
            Adam(lr=-1)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
