"""Tests for the persistent on-disk simulation cache.

The cache key must change whenever anything that determines a simulation's
outcome changes -- every GPUConfig field (cost/energy models included),
the trace's content, or a strategy parameter -- and must be stable across
instances, dict orderings and processes.  Corrupt entries must degrade to
re-simulation (quarantined as evidence, never deleted, never crashing),
and ``clear_caches(disk=True)`` must leave no state behind for the next
test to trip over.
"""

import dataclasses
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import LAB, ArcHW, ArcSWButterfly
from repro.experiments import diskcache, runner
from repro.experiments.diskcache import (
    DiskCache,
    result_key,
    strategy_fingerprint,
)
from repro.experiments.runner import clear_caches, get_result, seed_trace
from repro.gpu import RTX3060_SIM, RTX4090_SIM
from repro.gpu.config import CostModel, EnergyModel
from repro.trace import coalesced_trace

BASE_TRACE = coalesced_trace(n_batches=64, num_params=4, seed=7, name="base")
BASE_STRATEGY = ArcSWButterfly(8)


def base_key():
    return result_key(RTX3060_SIM, BASE_TRACE, BASE_STRATEGY)


# --------------------------------------------------------------------- #
# Key sensitivity: every input field must matter
# --------------------------------------------------------------------- #


GPU_FIELD_PERTURBATIONS = {
    "name": "other-name",
    "num_sms": RTX3060_SIM.num_sms + 1,
    "subcores_per_sm": RTX3060_SIM.subcores_per_sm + 1,
    "num_rops": RTX3060_SIM.num_rops + RTX3060_SIM.num_partitions,
    "num_partitions": 6,  # still divides 48 ROPs evenly
    "lsu_queue_depth": RTX3060_SIM.lsu_queue_depth + 1,
    "interconnect_bw": RTX3060_SIM.interconnect_bw * 2,
    "clock_ghz": RTX3060_SIM.clock_ghz + 0.1,
    "registers_per_sm": RTX3060_SIM.registers_per_sm + 1,
    "l1_kib_per_sm": RTX3060_SIM.l1_kib_per_sm + 1,
    "l2_mib": RTX3060_SIM.l2_mib + 0.5,
    "dram_channels": RTX3060_SIM.dram_channels + 1,
    "dram_banks": RTX3060_SIM.dram_banks + 1,
    "dram_gib": RTX3060_SIM.dram_gib + 1,
}


@pytest.mark.parametrize("field", sorted(GPU_FIELD_PERTURBATIONS))
def test_key_changes_with_every_gpu_field(field):
    changed = dataclasses.replace(
        RTX3060_SIM, **{field: GPU_FIELD_PERTURBATIONS[field]}
    )
    assert result_key(changed, BASE_TRACE, BASE_STRATEGY) != base_key()


@pytest.mark.parametrize(
    "field", [f.name for f in dataclasses.fields(CostModel)]
)
def test_key_changes_with_every_cost_model_field(field):
    changed = RTX3060_SIM.with_cost(
        **{field: getattr(RTX3060_SIM.cost, field) + 1.0}
    )
    assert result_key(changed, BASE_TRACE, BASE_STRATEGY) != base_key()


@pytest.mark.parametrize(
    "field", [f.name for f in dataclasses.fields(EnergyModel)]
)
def test_key_changes_with_every_energy_model_field(field):
    changed = dataclasses.replace(
        RTX3060_SIM,
        energy=dataclasses.replace(
            RTX3060_SIM.energy,
            **{field: getattr(RTX3060_SIM.energy, field) + 1.0},
        ),
    )
    assert result_key(changed, BASE_TRACE, BASE_STRATEGY) != base_key()


def test_key_changes_with_trace_content():
    variants = []
    flipped = BASE_TRACE.lane_slots.copy()
    flipped[0, 0] = (flipped[0, 0] + 1) % BASE_TRACE.n_slots
    variants.append(dataclasses.replace(BASE_TRACE, lane_slots=flipped))
    variants.append(dataclasses.replace(BASE_TRACE, num_params=5))
    variants.append(dataclasses.replace(BASE_TRACE, n_slots=512))
    variants.append(dataclasses.replace(BASE_TRACE, bfly_eligible=False))
    variants.append(dataclasses.replace(BASE_TRACE, compute_cycles=130.0))
    variants.append(
        dataclasses.replace(BASE_TRACE, warp_id=BASE_TRACE.warp_id[::-1])
    )
    variants.append(coalesced_trace(n_batches=64, num_params=4, seed=8))
    keys = {result_key(RTX3060_SIM, v, BASE_STRATEGY) for v in variants}
    assert base_key() not in keys
    assert len(keys) == len(variants)  # all pairwise distinct too


def test_trace_name_is_cosmetic():
    renamed = dataclasses.replace(BASE_TRACE, name="renamed")
    assert result_key(RTX3060_SIM, renamed, BASE_STRATEGY) == base_key()


def test_key_changes_with_strategy_parameters():
    keys = {
        result_key(RTX3060_SIM, BASE_TRACE, strategy)
        for strategy in (
            ArcSWButterfly(8),
            ArcSWButterfly(16),
            ArcHW(),
            ArcHW(policy="always"),
            ArcHW(stall_threshold=0.5),
            LAB(),
            LAB(capacity_fraction=0.25),
        )
    }
    assert len(keys) == 7


def test_key_stable_across_instances_and_gpus():
    assert result_key(RTX3060_SIM, BASE_TRACE, ArcSWButterfly(8)) == base_key()
    assert (
        result_key(RTX4090_SIM, BASE_TRACE, BASE_STRATEGY) != base_key()
    )


def test_strategy_fingerprint_is_sorted_json():
    text = strategy_fingerprint(ArcHW(policy="always"))
    params = json.loads(text)["params"]
    assert params["policy"] == "always"
    assert list(params) == sorted(params)


def test_strategy_fingerprint_rejects_non_scalar_params():
    """A non-scalar constructor parameter must fail loudly, not be
    silently dropped (which would collide differently-behaving
    strategies onto one cache entry)."""

    class ListParamStrategy(ArcSWButterfly):
        def __init__(self, thresholds):
            super().__init__(thresholds[0])
            self.thresholds = thresholds

    with pytest.raises(TypeError, match="thresholds"):
        strategy_fingerprint(ListParamStrategy([8, 16]))


def test_every_registry_strategy_is_fingerprintable():
    """All shipped strategies use scalar parameters only, so the loud
    non-scalar rejection never fires on the real registry."""
    for name in runner.STRATEGY_FACTORIES:
        text = strategy_fingerprint(runner.make_strategy(name))
        json.loads(text)  # canonical JSON, parseable


def test_key_changes_with_engine_identity(monkeypatch):
    """Editing the simulation engine must invalidate every entry: a warm
    cache may never serve results computed by a different engine."""
    unperturbed = base_key()
    monkeypatch.setattr(diskcache, "_engine_fingerprint", "0" * 64)
    assert base_key() != unperturbed


def test_engine_fingerprint_tracks_source_content(tmp_path):
    def make_tree(root, engine_body):
        for package in ("core", "gpu", "trace"):
            pkg = root / package
            pkg.mkdir(parents=True)
            (pkg / "__init__.py").write_text("")
        (root / "gpu" / "engine.py").write_text(engine_body)
        return root

    a = make_tree(tmp_path / "a", "CYCLES = 1\n")
    b = make_tree(tmp_path / "b", "CYCLES = 1\n")
    c = make_tree(tmp_path / "c", "CYCLES = 2\n")
    assert diskcache.engine_fingerprint(a) == diskcache.engine_fingerprint(b)
    assert diskcache.engine_fingerprint(a) != diskcache.engine_fingerprint(c)
    # Renaming a file changes the fingerprint even with identical bytes.
    (b / "gpu" / "engine.py").rename(b / "gpu" / "engine2.py")
    assert diskcache.engine_fingerprint(a) != diskcache.engine_fingerprint(b)


def test_engine_fingerprint_covers_installed_engine():
    """The process-wide fingerprint hashes the real repro packages and
    is stable within a process (source files do not change under us)."""
    first = diskcache.engine_fingerprint()
    assert first == diskcache.engine_fingerprint()
    import repro.gpu.engine as engine_mod

    root = Path(engine_mod.__file__).resolve().parents[1]
    assert diskcache.engine_fingerprint(root) == first


def test_key_stable_across_processes():
    """The key must not depend on per-process state (hash randomization,
    dict ordering, import order)."""
    script = (
        "from repro.experiments.diskcache import result_key\n"
        "from repro.gpu import RTX3060_SIM\n"
        "from repro.trace import coalesced_trace\n"
        "from repro.core import ArcSWButterfly\n"
        "trace = coalesced_trace(n_batches=64, num_params=4, seed=7,"
        " name='base')\n"
        "print(result_key(RTX3060_SIM, trace, ArcSWButterfly(8)))\n"
    )
    env = dict(os.environ, PYTHONHASHSEED="12345")
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[1] / "src")
        + os.pathsep + env.get("PYTHONPATH", "")
    )
    out = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True,
        text=True, check=True,
    )
    assert out.stdout.strip() == base_key()


# --------------------------------------------------------------------- #
# Storage behaviour: round trips, corruption, persistence
# --------------------------------------------------------------------- #


def simulated_result():
    return runner.simulate_cell(BASE_TRACE, RTX3060_SIM, ArcSWButterfly(8))


def test_round_trip_equality(tmp_path):
    cache = DiskCache(tmp_path)
    result = simulated_result()
    cache.store(base_key(), result)
    assert cache.load(base_key()) == result
    assert cache.stats.hits == 1 and cache.stats.writes == 1


def test_cold_lookup_is_a_miss(tmp_path):
    cache = DiskCache(tmp_path)
    assert cache.load(base_key()) is None
    assert cache.stats.misses == 1 and cache.stats.errors == 0


def test_persists_across_cache_instances(tmp_path):
    DiskCache(tmp_path).store(base_key(), simulated_result())
    fresh = DiskCache(tmp_path)  # a later session
    assert fresh.load(base_key()) == simulated_result()


@pytest.mark.parametrize(
    "corruption",
    ["truncate", "garbage", "wrong_version", "foreign_schema"],
)
def test_corrupt_entry_falls_back_to_miss(tmp_path, corruption):
    cache = DiskCache(tmp_path)
    cache.store(base_key(), simulated_result())
    [entry] = cache.entries()
    if corruption == "truncate":
        entry.write_text(entry.read_text()[: entry.stat().st_size // 2])
    elif corruption == "garbage":
        entry.write_bytes(b"\x00\xffnot json at all")
    elif corruption == "wrong_version":
        payload = json.loads(entry.read_text())
        payload["format"] = 999
        entry.write_text(json.dumps(payload))
    else:
        entry.write_text(json.dumps(
            {"format": 1, "key": base_key(),
             "result": {"no_such_field": 1}}
        ))
    assert cache.load(base_key()) is None
    assert cache.stats.errors == 1
    assert cache.stats.quarantined == 1
    assert not entry.exists(), "a bad entry must never be served twice"
    [quarantined] = cache.quarantined_entries()
    assert quarantined.name == entry.name, "evidence must be preserved"
    assert quarantined.is_relative_to(cache.quarantine_dir)


def test_repeat_corruption_quarantines_under_distinct_names(tmp_path):
    cache = DiskCache(tmp_path)
    for _ in range(3):
        cache.store(base_key(), simulated_result())
        [entry] = cache.entries()
        entry.write_bytes(b"\x00garbage")
        assert cache.load(base_key()) is None
    names = [path.name for path in cache.quarantined_entries()]
    assert names == [
        f"{base_key()}.json",
        f"{base_key()}.json.1",
        f"{base_key()}.json.2",
    ]
    assert cache.stats.quarantined == 3


def test_clear_preserves_quarantined_entries(tmp_path):
    cache = DiskCache(tmp_path)
    cache.store(base_key(), simulated_result())
    [entry] = cache.entries()
    entry.write_bytes(b"torn")
    assert cache.load(base_key()) is None
    cache.store(base_key(), simulated_result())
    assert cache.clear() == 1
    assert cache.entries() == []
    assert len(cache.quarantined_entries()) == 1


def test_open_sweeps_only_abandoned_temp_files(tmp_path):
    cache = DiskCache(tmp_path)
    cache.store(base_key(), simulated_result())
    shard = cache.entry_path(base_key()).parent
    stale = shard / ".deadbeef-stale.tmp"
    stale.write_text("half-written entry of a killed worker")
    ancient = time.time() - 2 * diskcache._TEMP_ORPHAN_AGE_SECONDS
    os.utime(stale, (ancient, ancient))
    fresh = shard / ".cafef00d-live.tmp"
    fresh.write_text("a concurrent worker's in-flight write")

    reopened = DiskCache(tmp_path)
    assert reopened.swept_temp_files == 1
    assert not stale.exists()
    assert fresh.exists(), "young temp files may be live writers"
    assert reopened.load(base_key()) is not None  # entries untouched


def test_sweep_age_is_tunable_via_env(tmp_path, monkeypatch):
    monkeypatch.delenv(diskcache.SWEEP_AGE_ENV, raising=False)
    default = diskcache._TEMP_ORPHAN_AGE_SECONDS
    assert diskcache.sweep_age_seconds() == default
    monkeypatch.setenv(diskcache.SWEEP_AGE_ENV, "60")
    assert diskcache.sweep_age_seconds() == 60.0
    # Nonsense and negative values fall back to the default rather than
    # making the sweeper eat live writers' temp files.
    monkeypatch.setenv(diskcache.SWEEP_AGE_ENV, "-5")
    assert diskcache.sweep_age_seconds() == default
    monkeypatch.setenv(diskcache.SWEEP_AGE_ENV, "soon")
    assert diskcache.sweep_age_seconds() == default

    # A short sweep age reclaims an orphan the default would spare.
    cache = DiskCache(tmp_path)
    cache.store(base_key(), simulated_result())
    shard = cache.entry_path(base_key()).parent
    orphan = shard / ".deadbeef-orphan.tmp"
    orphan.write_text("recently abandoned")
    recent = time.time() - 120
    os.utime(orphan, (recent, recent))
    assert DiskCache(tmp_path).swept_temp_files == 0, \
        "120s-old temp survives the default hour-long sweep age"
    monkeypatch.setenv(diskcache.SWEEP_AGE_ENV, "60")
    reopened = DiskCache(tmp_path)
    assert reopened.swept_temp_files == 1
    assert not orphan.exists()


def test_get_result_survives_corruption(monkeypatch):
    calls = []
    real = runner.simulate_kernel
    monkeypatch.setattr(
        runner, "simulate_kernel",
        lambda *a, **k: calls.append(1) or real(*a, **k),
    )
    seed_trace("WX", BASE_TRACE)
    first = get_result("WX", "3060-Sim", "ARC-SW-B-8")
    assert len(calls) == 1
    for entry in diskcache.active_cache().entries():
        entry.write_text("garbage")
    clear_caches()  # drop memory; disk is now corrupt
    seed_trace("WX", BASE_TRACE)
    again = get_result("WX", "3060-Sim", "ARC-SW-B-8")
    assert len(calls) == 2, "corruption must re-simulate, not crash"
    assert again == first


# --------------------------------------------------------------------- #
# Layered lookup and isolation (the clear_caches gap)
# --------------------------------------------------------------------- #


def test_memory_then_disk_then_simulate(monkeypatch):
    calls = []
    real = runner.simulate_kernel
    monkeypatch.setattr(
        runner, "simulate_kernel",
        lambda *a, **k: calls.append(1) or real(*a, **k),
    )
    seed_trace("WX", BASE_TRACE)
    first = get_result("WX", "3060-Sim", "baseline")
    second = get_result("WX", "3060-Sim", "baseline")
    assert second is first and len(calls) == 1  # memory hit
    clear_caches()
    seed_trace("WX", BASE_TRACE)
    third = get_result("WX", "3060-Sim", "baseline")
    assert len(calls) == 1, "warm disk cache must not re-simulate"
    assert third == first and third is not first  # disk hit


def test_no_cross_test_leakage_after_full_clear(monkeypatch):
    """``clear_caches(disk=True)`` wipes both layers: content registered
    later under the same workload key can never be served stale results."""
    trace_a = coalesced_trace(n_batches=64, num_params=4, seed=1, name="W")
    trace_b = coalesced_trace(n_batches=64, num_params=4, seed=2, name="W")
    seed_trace("W", trace_a)
    result_a = get_result("W", "3060-Sim", "baseline")
    assert diskcache.active_cache().entries()

    clear_caches(disk=True)
    assert diskcache.active_cache().entries() == []

    seed_trace("W", trace_b)
    result_b = get_result("W", "3060-Sim", "baseline")
    assert result_b != result_a, "stale result leaked across the clear"


def test_memory_only_clear_keeps_disk_warm():
    seed_trace("W", BASE_TRACE)
    get_result("W", "3060-Sim", "baseline")
    n_entries = len(diskcache.active_cache().entries())
    clear_caches()
    assert len(diskcache.active_cache().entries()) == n_entries


def test_isolated_repoints_then_restores(tmp_path):
    """``diskcache.isolated`` gives the block private disk state and
    restores the previous cache object (stats included) -- it never
    clears the shared cache in place."""
    outer = diskcache.active_cache()
    outer.store(base_key(), simulated_result())
    outer_entries = outer.entries()
    with diskcache.isolated(tmp_path / "inner") as inner:
        assert diskcache.active_cache() is inner
        assert inner.root == tmp_path / "inner"
        assert inner.entries() == []  # private, initially empty
        inner.store(base_key(), simulated_result())
    assert diskcache.active_cache() is outer
    assert outer.entries() == outer_entries, "shared cache was touched"


def test_isolated_restores_disabled_override(tmp_path):
    """A ``configure(enabled=...)`` issued inside the block cannot leak
    out of it."""
    with diskcache.isolated(tmp_path / "inner"):
        diskcache.configure(enabled=False)
        assert diskcache.active_cache() is None
    assert diskcache.active_cache() is not None


def test_disabled_cache_simulates_every_time(monkeypatch):
    diskcache.configure(enabled=False)
    assert diskcache.active_cache() is None
    calls = []
    real = runner.simulate_kernel
    monkeypatch.setattr(
        runner, "simulate_kernel",
        lambda *a, **k: calls.append(1) or real(*a, **k),
    )
    seed_trace("WX", BASE_TRACE)
    get_result("WX", "3060-Sim", "baseline")
    clear_caches()
    seed_trace("WX", BASE_TRACE)
    get_result("WX", "3060-Sim", "baseline")
    assert len(calls) == 2
