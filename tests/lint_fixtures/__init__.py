"""Seeded-mutant fixture corpus for every arclint rule.

Each :class:`FixtureCase` is a tiny source tree seeded with exactly one
violation of one rule (``kind="positive"``) or the compliant spelling of
the same code (``kind="negative"``).  ``tests/test_lint_fixtures.py``
materializes every case into a temp tree and asserts positives are
caught and negatives stay clean; a meta-test asserts every registered
rule id owns at least one of each kind, so adding a rule without a
fixture fails the suite.

The corpus doubles as executable documentation: each case's ``files``
dict shows the smallest code shape that trips (or satisfies) its rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FixtureCase:
    """One seeded source tree and the verdict arclint must reach on it."""

    rule: str               #: rule id, e.g. ``"ARC003"``
    kind: str               #: ``"positive"`` (must flag) / ``"negative"``
    name: str               #: short slug, unique within (rule, kind)
    files: dict = field(default_factory=dict)  #: rel path -> source
    expect: "str | None" = None  #: substring of a positive's message

    @property
    def id(self) -> str:
        return f"{self.rule}-{self.kind}-{self.name}"


def cases_for(rule: str, kind: "str | None" = None) -> "list[FixtureCase]":
    return [c for c in CASES
            if c.rule == rule and (kind is None or c.kind == kind)]


# --------------------------------------------------------------------- #
# ARC001 fingerprint-completeness
# --------------------------------------------------------------------- #

_ARC001 = [
    FixtureCase("ARC001", "positive", "fingerprint-omits-field", {
        "cfg.py": (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Cfg:\n"
            "    alpha: float\n"
            "    beta: float\n"
            "    def fingerprint(self):\n"
            "        return str(self.alpha)\n"
        ),
    }, expect="beta"),
    FixtureCase("ARC001", "positive", "key-schema-omits-field", {
        "cache.py": (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Cfg:\n"
            "    alpha: float\n"
            "    gamma: float\n"
            "_KEY_FIELDS = ('alpha',)\n"
        ),
    }, expect="gamma"),
    FixtureCase("ARC001", "negative", "asdict-is-complete", {
        "cfg.py": (
            "from dataclasses import asdict, dataclass\n"
            "@dataclass\n"
            "class Cfg:\n"
            "    alpha: float\n"
            "    beta: float\n"
            "    def fingerprint(self):\n"
            "        return str(asdict(self))\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC002 determinism
# --------------------------------------------------------------------- #

_ARC002 = [
    FixtureCase("ARC002", "positive", "unseeded-rng", {
        "core/mod.py": (
            "import numpy as np\n"
            "def sample():\n"
            "    return np.random.default_rng().random()\n"
        ),
    }),
    FixtureCase("ARC002", "positive", "wall-clock", {
        "trace/mod.py": (
            "import time\n"
            "def stamp():\n"
            "    return time.perf_counter()\n"
        ),
    }, expect="wall-clock"),
    FixtureCase("ARC002", "negative", "seeded-rng-and-sorted-set", {
        "core/mod.py": (
            "import numpy as np\n"
            "def sample(seed, items):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return [rng.random() for _ in sorted(set(items))]\n"
        ),
    }),
    # Telemetry collectors live inside the engine packages, so the
    # determinism rule must still catch one that stamps records off the
    # host clock ...
    FixtureCase("ARC002", "positive", "wall-clock-telemetry", {
        "gpu/probe.py": (
            "import time\n"
            "class Probe:\n"
            "    def __init__(self):\n"
            "        self.spans = []\n"
            "    def record(self, subcore, phase):\n"
            "        self.spans.append((subcore, phase, time.time()))\n"
        ),
    }, expect="wall-clock"),
    # ... while staying silent for one stamped purely in simulated
    # cycles handed over by the engine (the shipped Telemetry design).
    FixtureCase("ARC002", "negative", "sim-time-telemetry", {
        "gpu/probe.py": (
            "class Probe:\n"
            "    def __init__(self):\n"
            "        self.spans = []\n"
            "    def record(self, subcore, phase, start, end):\n"
            "        self.spans.append((subcore, phase, start, end))\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC003 unit-safety (flow-sensitive since v2)
# --------------------------------------------------------------------- #

_ARC003 = [
    FixtureCase("ARC003", "positive", "direct-ns-plus-cycles", {
        "mod.py": (
            "def total(service_ns, issue_cycles):\n"
            "    return service_ns + issue_cycles\n"
        ),
    }, expect="clock_ghz"),
    # v2: the ns tag travels through a neutrally named local before the
    # mix -- invisible to the v1 suffix scan, provable by the dataflow.
    FixtureCase("ARC003", "positive", "aliased-ns-plus-cycles", {
        "mod.py": (
            "def total(service_ns, issue_cycles):\n"
            "    latency = service_ns\n"
            "    return latency + issue_cycles\n"
        ),
    }),
    FixtureCase("ARC003", "positive", "literal-into-ns-table", {
        "mod.py": (
            "DOMAIN_NS = {'atomic': 0.95}\n"
            "def padded():\n"
            "    return DOMAIN_NS['atomic'] + 0.5\n"
        ),
    }, expect="literal"),
    FixtureCase("ARC003", "negative", "clock-converted-alias", {
        "mod.py": (
            "def total(service_ns, issue_cycles, clock_ghz):\n"
            "    latency = service_ns * clock_ghz\n"
            "    return latency + issue_cycles\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC004 strategy-conformance
# --------------------------------------------------------------------- #

_STRATEGY_BASE = (
    "class AtomicStrategy:\n"
    "    name = 'abstract'\n"
)

_ARC004 = [
    FixtureCase("ARC004", "positive", "missing-plan-batch", {
        "core/__init__.py": "from core.mod import Broken\n",
        "core/mod.py": _STRATEGY_BASE + (
            "class Broken(AtomicStrategy):\n"
            "    def __init__(self, threshold: float = 0.5):\n"
            "        self.threshold = threshold\n"
        ),
    }, expect="plan_batch"),
    FixtureCase("ARC004", "negative", "conformant-strategy", {
        "core/__init__.py": (
            "from core.mod import Good\n__all__ = ['Good']\n"
        ),
        "core/mod.py": _STRATEGY_BASE + (
            "class Good(AtomicStrategy):\n"
            "    name = 'good'\n"
            "    def __init__(self, threshold: float = 0.5):\n"
            "        self.threshold = threshold\n"
            "    def plan_batch(self, batch, engine):\n"
            "        return None\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC005 resilient-execution
# --------------------------------------------------------------------- #

_ARC005 = [
    FixtureCase("ARC005", "positive", "executor-map", {
        "experiments/run.py": (
            "def run(pool, cells):\n"
            "    return list(pool.map(simulate, cells))\n"
        ),
    }, expect=".map()"),
    FixtureCase("ARC005", "negative", "timeouts-everywhere", {
        "experiments/run.py": (
            "def run(futures):\n"
            "    done = futures[0].result(timeout=0)\n"
            "    late = futures[1].result(30.0)\n"
            "    return done, late\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC006 interprocedural unit contracts
# --------------------------------------------------------------------- #

_ARC006 = [
    # A ns-valued return (by the callee's own name contract) flows into
    # a function whose name promises cycles.
    FixtureCase("ARC006", "positive", "return-mismatch", {
        "core/timing.py": (
            "def service_time_ns(width):\n"
            "    return width * 0.25\n"
            "def total_cycles(width):\n"
            "    return service_time_ns(width)\n"
        ),
    }, expect="total_cycles"),
    # A ns-tagged value crosses a call boundary into a *_cycles param.
    FixtureCase("ARC006", "positive", "arg-mismatch", {
        "core/pipe.py": (
            "def issue(width_cycles):\n"
            "    return width_cycles * 2\n"
            "def drive(service_ns):\n"
            "    return issue(service_ns)\n"
        ),
    }, expect="width_cycles"),
    # The mismatch can hide an arbitrary number of calls deep: the
    # fixpoint converges helper returns before call sites are judged.
    FixtureCase("ARC006", "positive", "two-hop-chain", {
        "core/chain.py": (
            "def base_latency_ns(width):\n"
            "    return width * 0.4\n"
            "def padded(width):\n"
            "    return base_latency_ns(width) + 1.5\n"
            "def issue(width_cycles):\n"
            "    return width_cycles * 2\n"
            "def drive(width):\n"
            "    return issue(padded(width))\n"
        ),
    }, expect="width_cycles"),
    FixtureCase("ARC006", "negative", "clock-converted-call", {
        "core/pipe.py": (
            "def issue(width_cycles):\n"
            "    return width_cycles * 2\n"
            "def drive(service_ns, clock_ghz):\n"
            "    return issue(service_ns * clock_ghz)\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC007 event-tie determinism
# --------------------------------------------------------------------- #

_ARC007 = [
    FixtureCase("ARC007", "positive", "tuple-without-seq", {
        "gpu/sched.py": (
            "import heapq\n"
            "def run(events):\n"
            "    heap = []\n"
            "    for t, payload in events:\n"
            "        heapq.heappush(heap, (t, payload))\n"
            "    return heap\n"
        ),
    }, expect="push_seq"),
    # Seeding the heap by append before the event loop is still a push.
    FixtureCase("ARC007", "positive", "append-seeded-heap", {
        "gpu/sched.py": (
            "import heapq\n"
            "def seed(pending):\n"
            "    heap = []\n"
            "    for t in pending:\n"
            "        heap.append((t, 'issue'))\n"
            "    heapq.heappush(heap, (0.0, 'drain'))\n"
            "    return heap\n"
        ),
    }),
    FixtureCase("ARC007", "negative", "tuple-with-seq-counter", {
        "gpu/sched.py": (
            "import heapq\n"
            "def run(events):\n"
            "    heap = []\n"
            "    push_seq = 0\n"
            "    for t, payload in events:\n"
            "        heapq.heappush(heap, (t, push_seq, payload))\n"
            "        push_seq += 1\n"
            "    return heap\n"
        ),
    }),
    FixtureCase("ARC007", "negative", "scalar-pushes", {
        "gpu/sched.py": (
            "import heapq\n"
            "def run(times):\n"
            "    heap = []\n"
            "    for t in times:\n"
            "        heapq.heappush(heap, t)\n"
            "    return heap\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC008 cache-key taint
# --------------------------------------------------------------------- #

# The fingerprint excludes `name` deliberately (cosmetic), with the
# ARC001 suppression that decision requires on the def line.
_TAGGED_TRACE = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class Trace:\n"
    "    name: str\n"
    "    width: int\n"
    "    def fingerprint(self):  # arclint: disable=ARC001\n"
    "        return str(self.width)\n"
)

_ARC008 = [
    FixtureCase("ARC008", "positive", "excluded-field-branches", {
        "core/mod.py": _TAGGED_TRACE + (
            "def issue(trace: Trace):\n"
            "    if trace.name == 'hot':\n"
            "        return trace.width * 2\n"
            "    return trace.width\n"
        ),
    }, expect="Trace.name"),
    FixtureCase("ARC008", "positive", "excluded-field-via-self", {
        "core/mod.py": _TAGGED_TRACE + (
            "class Engine:\n"
            "    def __init__(self, trace: Trace):\n"
            "        self.trace = trace\n"
            "    def cost(self):\n"
            "        return len(self.trace.name) * self.trace.width\n"
        ),
    }),
    FixtureCase("ARC008", "negative", "label-only-reads", {
        "core/mod.py": _TAGGED_TRACE + (
            "def describe(trace: Trace, render):\n"
            "    return render(trace_name=trace.name, width=trace.width)\n"
            "def banner(trace: Trace):\n"
            "    return f'trace {trace.name}: width={trace.width}'\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC009 shared-write protocols
# --------------------------------------------------------------------- #

_ARC009 = [
    FixtureCase("ARC009", "positive", "raw-write-to-cache-entry", {
        "experiments/publish.py": (
            "def publish(entry_path, payload):\n"
            "    with open(entry_path, 'w') as handle:\n"
            "        handle.write(payload)\n"
        ),
    }, expect="raw in-place write"),
    FixtureCase("ARC009", "positive", "buffered-append-to-obslog", {
        "experiments/logsink.py": (
            "def log_line(obslog_path, line):\n"
            "    with open(obslog_path, 'a') as handle:\n"
            "        handle.write(line)\n"
        ),
    }, expect="buffered append"),
    FixtureCase("ARC009", "negative", "atomic-rename-and-o-append", {
        "experiments/publish.py": (
            "import os\n"
            "import tempfile\n"
            "def publish(entry_path, payload):\n"
            "    fd, tmp = tempfile.mkstemp(dir=entry_path.parent)\n"
            "    with os.fdopen(fd, 'w') as handle:\n"
            "        handle.write(payload)\n"
            "    os.replace(tmp, entry_path)\n"
            "def log_line(obslog_path, line):\n"
            "    fd = os.open(obslog_path,\n"
            "                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)\n"
            "    try:\n"
            "        os.write(fd, line.encode('utf-8'))\n"
            "    finally:\n"
            "        os.close(fd)\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC010 spawn-global carry
# --------------------------------------------------------------------- #

_ARC010 = [
    FixtureCase("ARC010", "positive", "parent-global-read-in-worker", {
        "experiments/pipeline.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_config = None\n"
            "def set_config(value):\n"
            "    global _config\n"
            "    _config = value\n"
            "def _task(index):\n"
            "    return (_config, index)\n"
            "def run(values):\n"
            "    set_config(values)\n"
            "    out = []\n"
            "    with ProcessPoolExecutor(max_workers=2) as pool:\n"
            "        futures = [pool.submit(_task, i) for i in range(3)]\n"
            "        for future in futures:\n"
            "            out.append(future.result(timeout=60))\n"
            "    return out\n"
        ),
    }, expect="_config"),
    FixtureCase("ARC010", "negative", "initializer-carries-global", {
        "experiments/pipeline.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_config = None\n"
            "def _init(value):\n"
            "    global _config\n"
            "    _config = value\n"
            "def _task(index):\n"
            "    return (_config, index)\n"
            "def run(values):\n"
            "    out = []\n"
            "    with ProcessPoolExecutor(max_workers=2,\n"
            "                             initializer=_init,\n"
            "                             initargs=(values,)) as pool:\n"
            "        futures = [pool.submit(_task, i) for i in range(3)]\n"
            "        for future in futures:\n"
            "            out.append(future.result(timeout=60))\n"
            "    return out\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC011 spawn-env discipline
# --------------------------------------------------------------------- #

_ARC011 = [
    FixtureCase("ARC011", "positive", "env-mutation-after-pool", {
        "experiments/late_env.py": (
            "import os\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(values):\n"
            "    out = []\n"
            "    with ProcessPoolExecutor(max_workers=2) as pool:\n"
            "        os.environ['REPRO_MODE'] = 'late'\n"
            "        futures = [pool.submit(str, v) for v in values]\n"
            "        for future in futures:\n"
            "            out.append(future.result(timeout=60))\n"
            "    return out\n"
        ),
    }, expect="after a worker pool"),
    FixtureCase("ARC011", "positive", "undeclared-worker-env-read", {
        "experiments/knobs.py": (
            "import os\n"
            "def _task(index):\n"
            "    knob = os.environ.get('REPRO_SECRET_KNOB', '')\n"
            "    return (knob, index)\n"
            "def run(pool, values):\n"
            "    futures = [pool.submit(_task, v) for v in values]\n"
            "    return [future.result(timeout=60) for future in futures]\n"
        ),
    }, expect="REPRO_SECRET_KNOB"),
    FixtureCase("ARC011", "negative", "declared-carry-and-early-export", {
        "experiments/knobs.py": (
            "import os\n"
            "FAULTS_ENV = 'REPRO_FAULTS'\n"
            "def set_mode(flag):\n"
            "    if flag:\n"
            "        os.environ[FAULTS_ENV] = 'on'\n"
            "    else:\n"
            "        os.environ.pop(FAULTS_ENV, None)\n"
            "def _task(index):\n"
            "    raw = os.environ.get(FAULTS_ENV, '')\n"
            "    return (raw, index)\n"
            "def run(pool, values):\n"
            "    futures = [pool.submit(_task, v) for v in values]\n"
            "    return [future.result(timeout=60) for future in futures]\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC012 per-resource protocol agreement
# --------------------------------------------------------------------- #

_ARC012 = [
    FixtureCase("ARC012", "positive", "append-vs-rename-on-manifest", {
        "experiments/journal.py": (
            "import os\n"
            "import tempfile\n"
            "def append_record(manifest_path, line):\n"
            "    fd = os.open(manifest_path,\n"
            "                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)\n"
            "    try:\n"
            "        os.write(fd, line.encode('utf-8'))\n"
            "    finally:\n"
            "        os.close(fd)\n"
            "def rewrite(manifest_path, payload):\n"
            "    fd, tmp = tempfile.mkstemp(dir=manifest_path.parent)\n"
            "    with os.fdopen(fd, 'w') as handle:\n"
            "        handle.write(payload)\n"
            "    os.replace(tmp, manifest_path)\n"
        ),
    }, expect="mixed atomicity"),
    FixtureCase("ARC012", "negative", "all-writers-append", {
        "experiments/journal.py": (
            "import os\n"
            "def append_record(manifest_path, line):\n"
            "    fd = os.open(manifest_path,\n"
            "                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)\n"
            "    try:\n"
            "        os.write(fd, line.encode('utf-8'))\n"
            "    finally:\n"
            "        os.close(fd)\n"
            "def append_note(manifest_path, note):\n"
            "    fd = os.open(manifest_path,\n"
            "                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)\n"
            "    try:\n"
            "        os.write(fd, note.encode('utf-8'))\n"
            "    finally:\n"
            "        os.close(fd)\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC013 no blocking call in coroutine context
# --------------------------------------------------------------------- #

_ARC013 = [
    FixtureCase("ARC013", "positive", "sleep-on-the-loop", {
        "service/gateway.py": (
            "import time\n"
            "async def admit(request):\n"
            "    time.sleep(0.01)\n"
            "    return request\n"
        ),
    }, expect="blocking primitive time.sleep()"),
    FixtureCase("ARC013", "positive", "transitive-file-read", {
        "experiments/blob.py": (
            "def read_blob(path):\n"
            "    return path.read_text()\n"
        ),
        "service/gateway.py": (
            "from experiments.blob import read_blob\n"
            "async def admit(path):\n"
            "    return read_blob(path)\n"
        ),
    }, expect="blocks the event loop"),
    FixtureCase("ARC013", "negative", "routed-through-executor", {
        "service/gateway.py": (
            "import asyncio\n"
            "def read_blob(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
            "async def admit(path):\n"
            "    return await asyncio.to_thread(read_blob, path)\n"
        ),
    }),
    FixtureCase("ARC013", "negative", "blocking-helper-stays-sync", {
        "service/gateway.py": (
            "import time\n"
            "def warm_up():\n"
            "    time.sleep(0.01)\n"
            "async def admit(request):\n"
            "    return request\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC014 await discipline
# --------------------------------------------------------------------- #

_ARC014 = [
    FixtureCase("ARC014", "positive", "unawaited-coroutine", {
        "service/gateway.py": (
            "async def flush():\n"
            "    pass\n"
            "async def admit(request):\n"
            "    flush()\n"
            "    return request\n"
        ),
    }, expect="never awaited"),
    FixtureCase("ARC014", "positive", "dropped-task-handle", {
        "service/gateway.py": (
            "import asyncio\n"
            "async def flush():\n"
            "    pass\n"
            "async def admit(request):\n"
            "    asyncio.create_task(flush())\n"
            "    return request\n"
        ),
    }, expect="handle is dropped"),
    FixtureCase("ARC014", "negative", "awaited-and-retained", {
        "service/gateway.py": (
            "import asyncio\n"
            "async def flush():\n"
            "    pass\n"
            "async def admit(request):\n"
            "    task = asyncio.create_task(flush())\n"
            "    await task\n"
            "    return request\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC015 deadline taint
# --------------------------------------------------------------------- #

_ARC015 = [
    FixtureCase("ARC015", "positive", "unclamped-policy-timeout", {
        "service/gateway.py": (
            "import asyncio\n"
            "class Gateway:\n"
            "    def __init__(self, policy):\n"
            "        self.policy = policy\n"
            "    async def fetch(self, waiter, deadline):\n"
            "        return await asyncio.wait_for(\n"
            "            waiter, self.policy.timeout\n"
            "        )\n"
        ),
    }, expect="shared policy default"),
    FixtureCase("ARC015", "positive", "unbounded-event-wait", {
        "service/gateway.py": (
            "async def fetch(gate, deadline):\n"
            "    await gate.wait()\n"
            "    return deadline\n"
        ),
    }, expect="unbounded await"),
    FixtureCase("ARC015", "negative", "clamped-wait-for", {
        "service/gateway.py": (
            "import asyncio\n"
            "async def fetch(gate, deadline, policy):\n"
            "    clamped = policy.clamped(deadline)\n"
            "    await asyncio.wait_for(gate.wait(), clamped.timeout)\n"
            "    return deadline\n"
        ),
    }),
    FixtureCase("ARC015", "negative", "no-deadline-no-taint", {
        "service/gateway.py": (
            "async def fetch(gate):\n"
            "    await gate.wait()\n"
        ),
    }),
]


# --------------------------------------------------------------------- #
# ARC016 cancellation safety
# --------------------------------------------------------------------- #

_ARC016 = [
    FixtureCase("ARC016", "positive", "queue-get-unbalanced", {
        "service/gateway.py": (
            "async def drain(task_queue):\n"
            "    item = await task_queue.get()\n"
            "    return item\n"
        ),
    }, expect="task_done"),
    FixtureCase("ARC016", "positive", "acquire-without-finally", {
        "service/gateway.py": (
            "async def guard(state_lock, work):\n"
            "    await state_lock.acquire()\n"
            "    result = await work\n"
            "    state_lock.release()\n"
            "    return result\n"
        ),
    }, expect="release"),
    FixtureCase("ARC016", "positive", "unshielded-journal-write", {
        "service/gateway.py": (
            "async def persist(journal, entry):\n"
            "    await journal.record(entry)\n"
        ),
    }, expect="shield"),
    FixtureCase("ARC016", "negative", "task-done-in-finally", {
        "service/gateway.py": (
            "async def drain(task_queue):\n"
            "    item = await task_queue.get()\n"
            "    try:\n"
            "        return item\n"
            "    finally:\n"
            "        task_queue.task_done()\n"
        ),
    }),
    FixtureCase("ARC016", "negative", "shielded-journal-write", {
        "service/gateway.py": (
            "import asyncio\n"
            "async def persist(journal, entry):\n"
            "    await asyncio.shield(journal.record(entry))\n"
        ),
    }),
]


CASES: "list[FixtureCase]" = [
    *_ARC001, *_ARC002, *_ARC003, *_ARC004,
    *_ARC005, *_ARC006, *_ARC007, *_ARC008,
    *_ARC009, *_ARC010, *_ARC011, *_ARC012,
    *_ARC013, *_ARC014, *_ARC015, *_ARC016,
]
