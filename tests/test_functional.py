"""Value-level correctness: every strategy preserves the gradient sums.

§5.2 of the paper: atomic adds are commutative, so warp-level reduction
only reassociates floating-point additions.  These tests assert that every
strategy's reduction semantics reproduce the dense scatter-add reference up
to FP noise -- on hand-built batches, on synthetic traces, and on
hypothesis-generated ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    LAB,
    PHI,
    ArcHW,
    ArcSWButterfly,
    ArcSWSerialized,
    BaselineAtomic,
    CCCLReduce,
    LABIdeal,
)
from repro.core.functional import accumulate_with_strategy, max_relative_error
from repro.gpu.warp import WARP_SIZE
from repro.trace import (
    INACTIVE,
    KernelTrace,
    coalesced_trace,
    mixed_locality_trace,
    scattered_trace,
)

ALL_STRATEGIES = [
    BaselineAtomic(),
    ArcSWSerialized(8),
    ArcSWButterfly(8),
    ArcHW(),
    CCCLReduce(),
    LAB(),
    LABIdeal(),
    PHI(),
]


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
@pytest.mark.parametrize(
    "trace_factory",
    [coalesced_trace, mixed_locality_trace, scattered_trace],
    ids=["coalesced", "mixed", "scattered"],
)
def test_strategy_preserves_sums(strategy, trace_factory):
    trace = trace_factory(n_batches=40, seed=11, with_values=True)
    result = accumulate_with_strategy(trace, strategy)
    reference = trace.reference_sums()
    assert max_relative_error(result, reference) < 1e-9


def test_butterfly_matches_exact_tree_order():
    """The SW-B override reduces in tree order over zero-padded lanes."""
    rng = np.random.default_rng(0)
    lane_slots = np.full(WARP_SIZE, 3)
    lane_slots[10:] = INACTIVE
    values = rng.standard_normal((WARP_SIZE, 2))
    [(slot, total)] = ArcSWButterfly(0).reduce_batch_values(lane_slots, values)
    assert slot == 3
    padded = np.where((lane_slots >= 0)[:, None], values, 0.0)
    width = WARP_SIZE
    expected = padded.copy()
    while width > 1:
        half = width // 2
        expected[:half] += expected[half:width]
        width = half
    np.testing.assert_allclose(total, expected[0])


def test_serial_reduction_left_to_right_order():
    lane_slots = np.full(WARP_SIZE, INACTIVE)
    lane_slots[[2, 5, 9]] = 4
    values = np.zeros((WARP_SIZE, 1))
    values[2], values[5], values[9] = 1.0, 2.0, 4.0
    [(slot, total)] = ArcSWSerialized(0).reduce_batch_values(lane_slots, values)
    assert slot == 4
    assert total[0] == 7.0


def test_all_inactive_batch_contributes_nothing():
    lane_slots = np.full(WARP_SIZE, INACTIVE)
    values = np.ones((WARP_SIZE, 3))
    for strategy in ALL_STRATEGIES:
        assert strategy.reduce_batch_values(lane_slots, values) == []


def test_accumulate_requires_values():
    trace = coalesced_trace(n_batches=5, with_values=False)
    with pytest.raises(ValueError):
        accumulate_with_strategy(trace, BaselineAtomic())


def test_max_relative_error_shape_check():
    with pytest.raises(ValueError):
        max_relative_error(np.zeros((2, 2)), np.zeros((3, 2)))


def test_max_relative_error_zero_reference_is_absolute():
    assert max_relative_error(np.array([1e-12]), np.array([0.0])) < 1e-9


@st.composite
def traced_batches(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    lane_slots = draw(
        hnp.arrays(
            dtype=np.int64,
            shape=(n, WARP_SIZE),
            elements=st.integers(min_value=INACTIVE, max_value=4),
        )
    )
    values = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=(n, WARP_SIZE, 2),
            elements=st.floats(
                min_value=-1e3, max_value=1e3, allow_nan=False
            ),
        )
    )
    return KernelTrace(
        lane_slots=lane_slots, num_params=2, n_slots=5, values=values
    )


@given(traced_batches())
@settings(max_examples=40, deadline=None)
def test_sum_preservation_property(trace):
    reference = trace.reference_sums()
    for strategy in (ArcSWSerialized(4), ArcSWButterfly(4), ArcHW()):
        result = accumulate_with_strategy(trace, strategy)
        np.testing.assert_allclose(result, reference, rtol=1e-9, atol=1e-6)
