"""Per-strategy plan semantics: instruction counts, traffic, thresholds."""

import numpy as np
import pytest

from repro.core import (
    LAB,
    PHI,
    ArcHW,
    ArcSWButterfly,
    ArcSWSerialized,
    BaselineAtomic,
    BatchView,
    CCCLReduce,
    LABIdeal,
)
from repro.core.base import EngineView
from repro.gpu import RTX4090_SIM
from repro.trace import KernelTrace

NUM_PARAMS = 10
COST = RTX4090_SIM.cost


class FakeEngine(EngineView):
    """EngineView stub with controllable LSU pressure."""

    def __init__(self, pressure=0.0):
        self._pressure = pressure
        self._now = 0.0

    @property
    def now(self):
        return self._now

    def lsu_pressure(self, sm):
        return self._pressure


def make_view(groups, num_params=NUM_PARAMS, sm=0):
    """groups: list of (slot, size) pairs."""
    slots = np.array([g[0] for g in groups], dtype=np.int64)
    sizes = np.array([g[1] for g in groups], dtype=np.int64)
    return BatchView(0, sm, sm * 4, slots, sizes, num_params, True)


def make_trace(bfly_eligible=True, num_params=NUM_PARAMS):
    lanes = np.zeros((1, 32), dtype=np.int64)
    return KernelTrace(
        lanes, num_params=num_params, n_slots=64, bfly_eligible=bfly_eligible
    )


def begin(strategy, **trace_kwargs):
    strategy.begin_kernel(make_trace(**trace_kwargs), RTX4090_SIM)
    return strategy


class TestBaseline:
    def test_empty_batch(self):
        plan = begin(BaselineAtomic()).plan_batch(make_view([]), FakeEngine())
        assert plan.issue_cycles == 0
        assert plan.requests == []

    def test_single_group_full_warp(self):
        plan = begin(BaselineAtomic()).plan_batch(
            make_view([(7, 32)]), FakeEngine()
        )
        assert plan.issue_cycles == NUM_PARAMS * COST.atomic_issue
        [req] = plan.requests
        assert req.slot == 7
        assert req.rop_ops == 32 * NUM_PARAMS

    def test_multi_group_replays_transactions(self):
        plan = begin(BaselineAtomic()).plan_batch(
            make_view([(1, 10), (2, 6)]), FakeEngine()
        )
        assert plan.issue_cycles == 2 * NUM_PARAMS * COST.atomic_issue
        assert {(r.slot, r.rop_ops) for r in plan.requests} == {
            (1, 10 * NUM_PARAMS),
            (2, 6 * NUM_PARAMS),
        }

    def test_never_uses_local_units(self):
        plan = begin(BaselineAtomic()).plan_batch(
            make_view([(1, 32)]), FakeEngine()
        )
        assert plan.ru_values == 0
        assert plan.sm_buffer_ops == 0
        assert plan.shuffle_ops == 0


class TestArcSWSerialized:
    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            ArcSWSerialized(balance_threshold=33)
        with pytest.raises(ValueError):
            ArcSWSerialized(balance_threshold=-1)

    def test_group_above_threshold_reduced(self):
        plan = begin(ArcSWSerialized(8)).plan_batch(
            make_view([(3, 20)]), FakeEngine()
        )
        [req] = plan.requests
        assert req.rop_ops == NUM_PARAMS  # aggregated: one op per parameter
        assert plan.shuffle_ops == 20 * NUM_PARAMS

    def test_group_below_threshold_goes_to_rop(self):
        plan = begin(ArcSWSerialized(8)).plan_batch(
            make_view([(3, 4)]), FakeEngine()
        )
        [req] = plan.requests
        assert req.rop_ops == 4 * NUM_PARAMS
        assert plan.shuffle_ops == 0

    def test_single_lane_group_never_reduced(self):
        plan = begin(ArcSWSerialized(0)).plan_batch(
            make_view([(3, 1)]), FakeEngine()
        )
        [req] = plan.requests
        assert req.rop_ops == NUM_PARAMS  # one lane: nothing to reduce
        assert plan.shuffle_ops == 0

    def test_mixed_groups_split_by_threshold(self):
        plan = begin(ArcSWSerialized(16)).plan_batch(
            make_view([(1, 20), (2, 3)]), FakeEngine()
        )
        ops = {r.slot: r.rop_ops for r in plan.requests}
        assert ops[1] == NUM_PARAMS
        assert ops[2] == 3 * NUM_PARAMS

    def test_serial_cost_scales_with_largest_group(self):
        small = begin(ArcSWSerialized(2)).plan_batch(
            make_view([(1, 4)]), FakeEngine()
        )
        large = begin(ArcSWSerialized(2)).plan_batch(
            make_view([(1, 28)]), FakeEngine()
        )
        assert large.issue_cycles > small.issue_cycles

    def test_name_embeds_threshold(self):
        assert ArcSWSerialized(5).name == "ARC-SW-S-5"


class TestArcSWButterfly:
    def test_rejects_ineligible_trace(self):
        with pytest.raises(ValueError, match="divergence"):
            begin(ArcSWButterfly(16), bfly_eligible=False)

    def test_all_same_above_threshold_butterfly(self):
        plan = begin(ArcSWButterfly(16)).plan_batch(
            make_view([(5, 20)]), FakeEngine()
        )
        [req] = plan.requests
        assert req.rop_ops == NUM_PARAMS
        assert plan.shuffle_ops == 5 * NUM_PARAMS * 32

    def test_below_threshold_falls_back(self):
        plan = begin(ArcSWButterfly(16)).plan_batch(
            make_view([(5, 6)]), FakeEngine()
        )
        [req] = plan.requests
        assert req.rop_ops == 6 * NUM_PARAMS
        assert plan.shuffle_ops == 0

    def test_divergent_batch_falls_back(self):
        plan = begin(ArcSWButterfly(0)).plan_batch(
            make_view([(1, 16), (2, 16)]), FakeEngine()
        )
        assert {r.rop_ops for r in plan.requests} == {16 * NUM_PARAMS}
        assert plan.shuffle_ops == 0

    def test_empty_batch_takes_ballot_early_out(self):
        """A fully-inactive warp skips the zero-value reduction cheaply."""
        plan = begin(ArcSWButterfly(0)).plan_batch(make_view([]), FakeEngine())
        assert 0 < plan.issue_cycles <= COST.match_op + COST.branch
        assert plan.shuffle_ops == 0
        assert plan.requests == []

    def test_butterfly_cost_independent_of_active_count(self):
        """Redundant computation: 8 active lanes cost the same as 32."""
        p8 = begin(ArcSWButterfly(4)).plan_batch(make_view([(1, 8)]), FakeEngine())
        p32 = begin(ArcSWButterfly(4)).plan_batch(
            make_view([(1, 32)]), FakeEngine()
        )
        assert p8.issue_cycles == p32.issue_cycles


class TestArcHW:
    def test_stall_threshold_validated(self):
        with pytest.raises(ValueError):
            ArcHW(stall_threshold=0.0)
        with pytest.raises(ValueError):
            ArcHW(stall_threshold=1.5)

    def test_rop_path_when_lsu_free(self):
        plan = begin(ArcHW()).plan_batch(
            make_view([(2, 24)]), FakeEngine(pressure=0.0)
        )
        [req] = plan.requests
        assert req.rop_ops == 24 * NUM_PARAMS
        assert not req.after_ru
        assert plan.ru_values == 0

    def test_reduction_path_when_lsu_stalled(self):
        plan = begin(ArcHW()).plan_batch(
            make_view([(2, 24)]), FakeEngine(pressure=1.0)
        )
        [req] = plan.requests
        assert req.rop_ops == NUM_PARAMS
        assert req.after_ru
        assert plan.ru_values == 24 * NUM_PARAMS

    def test_single_lane_never_reduced_even_under_stall(self):
        plan = begin(ArcHW()).plan_batch(
            make_view([(2, 1)]), FakeEngine(pressure=1.0)
        )
        [req] = plan.requests
        assert not req.after_ru
        assert plan.ru_values == 0

    def test_no_software_prologue(self):
        """atomred adds no match/popc/branch instructions (§4.5)."""
        arc = begin(ArcHW()).plan_batch(make_view([(2, 24)]), FakeEngine())
        base = begin(BaselineAtomic()).plan_batch(make_view([(2, 24)]), FakeEngine())
        assert arc.issue_cycles == base.issue_cycles
        assert arc.shuffle_ops == 0


class TestCCCL:
    def test_always_reduces_uniform_batches(self):
        plan = begin(CCCLReduce()).plan_batch(make_view([(4, 2)]), FakeEngine())
        [req] = plan.requests
        assert req.rop_ops == NUM_PARAMS  # reduces even tiny groups

    def test_divergent_batch_fallback(self):
        plan = begin(CCCLReduce()).plan_batch(
            make_view([(4, 8), (5, 8)]), FakeEngine()
        )
        assert {r.rop_ops for r in plan.requests} == {8 * NUM_PARAMS}
        assert plan.shuffle_ops == 0

    def test_ineligible_trace_always_falls_back(self):
        strat = begin(CCCLReduce(), bfly_eligible=False)
        plan = strat.plan_batch(make_view([(4, 32)]), FakeEngine())
        [req] = plan.requests
        assert req.rop_ops == 32 * NUM_PARAMS

    def test_overhead_exceeds_arc_sw(self):
        cccl = begin(CCCLReduce()).plan_batch(make_view([(4, 32)]), FakeEngine())
        arc = begin(ArcSWButterfly(16)).plan_batch(
            make_view([(4, 32)]), FakeEngine()
        )
        assert cccl.issue_cycles > arc.issue_cycles


class TestLAB:
    def test_capacity_fraction_validated(self):
        with pytest.raises(ValueError):
            LAB(capacity_fraction=0.0)
        with pytest.raises(ValueError):
            LAB(capacity_fraction=1.5)

    def test_inserts_absorbed_by_buffer(self):
        strat = begin(LAB())
        plan = strat.plan_batch(make_view([(1, 16)]), FakeEngine())
        # Every lane value hits the buffer, plus tag/MSHR overhead.
        assert plan.sm_buffer_ops == int(16 * NUM_PARAMS * LAB.op_overhead)
        assert plan.requests == []  # absorbed, no eviction yet
        assert plan.local_absorb  # still traverses the LSU

    def test_ideal_has_no_tag_overhead(self):
        lab = begin(LAB()).plan_batch(make_view([(1, 16)]), FakeEngine())
        ideal = begin(LABIdeal()).plan_batch(make_view([(1, 16)]), FakeEngine())
        assert ideal.sm_buffer_ops == 16 * NUM_PARAMS
        assert lab.sm_buffer_ops > ideal.sm_buffer_ops

    def test_ideal_bypasses_lsu(self):
        strat = begin(LABIdeal())
        plan = strat.plan_batch(make_view([(1, 16)]), FakeEngine())
        assert not plan.local_absorb

    def test_ideal_capacity_larger(self):
        lab = begin(LAB())
        ideal = begin(LABIdeal())
        assert ideal.capacity_slots > lab.capacity_slots

    def test_eviction_after_capacity_exceeded(self):
        strat = begin(LAB())
        capacity = strat.capacity_slots
        engine = FakeEngine()
        evictions = []
        for slot in range(capacity + 3):
            plan = strat.plan_batch(make_view([(slot, 4)], sm=0), engine)
            evictions.extend(plan.requests)
        assert len(evictions) == 3
        assert all(r.rop_ops == NUM_PARAMS for r in evictions)
        # LRU: the first-inserted slots are the victims.
        assert [r.slot for r in evictions] == [0, 1, 2]

    def test_buffers_are_per_sm(self):
        strat = begin(LAB())
        capacity = strat.capacity_slots
        engine = FakeEngine()
        for slot in range(capacity):
            strat.plan_batch(make_view([(slot, 1)], sm=0), engine)
        # A different SM's buffer is untouched: no eviction.
        plan = strat.plan_batch(make_view([(63, 1)], sm=1), engine)
        assert plan.requests == []

    def test_end_kernel_flushes_everything(self):
        strat = begin(LAB())
        engine = FakeEngine()
        strat.plan_batch(make_view([(1, 4), (2, 4)], sm=0), engine)
        strat.plan_batch(make_view([(9, 4)], sm=3), engine)
        flushes = strat.end_kernel(engine)
        assert {(sm, r.slot) for sm, r in flushes} == {(0, 1), (0, 2), (3, 9)}
        assert strat.end_kernel(engine) == []  # idempotent


class TestPHI:
    def test_tag_ops_charged_per_lane_value(self):
        strat = begin(PHI())
        plan = strat.plan_batch(make_view([(1, 12)]), FakeEngine())
        assert plan.l1_tag_ops == 12 * NUM_PARAMS
        assert plan.local_absorb

    def test_flush_on_end(self):
        strat = begin(PHI())
        strat.plan_batch(make_view([(1, 4)], sm=2), FakeEngine())
        flushes = strat.end_kernel(FakeEngine())
        assert [(sm, r.slot) for sm, r in flushes] == [(2, 1)]
