"""Tests for the Gaussian scene model: quaternions, covariances, grads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.render.gaussians import (
    GaussianScene,
    build_covariance,
    covariance_backward,
    quat_rotation_backward,
    quat_to_rotation,
)

unit_quats = hnp.arrays(
    np.float64, (1, 4),
    elements=st.floats(min_value=-1, max_value=1),
).filter(lambda q: np.linalg.norm(q) > 0.3)


class TestQuaternions:
    def test_identity_quaternion(self):
        rotation = quat_to_rotation(np.array([[1.0, 0, 0, 0]]))
        np.testing.assert_allclose(rotation[0], np.eye(3), atol=1e-12)

    def test_known_rotation_90deg_z(self):
        s = np.sqrt(0.5)
        rotation = quat_to_rotation(np.array([[s, 0, 0, s]]))[0]
        np.testing.assert_allclose(
            rotation @ np.array([1.0, 0, 0]), [0, 1, 0], atol=1e-12
        )

    def test_zero_quaternion_rejected(self):
        with pytest.raises(ValueError):
            quat_to_rotation(np.zeros((1, 4)))

    def test_normalization_invariance(self):
        q = np.array([[0.3, -0.5, 0.7, 0.2]])
        np.testing.assert_allclose(
            quat_to_rotation(q), quat_to_rotation(3.7 * q), atol=1e-12
        )

    @given(unit_quats)
    @settings(max_examples=40, deadline=None)
    def test_rotation_is_orthonormal(self, q):
        rotation = quat_to_rotation(q)[0]
        np.testing.assert_allclose(rotation @ rotation.T, np.eye(3),
                                   atol=1e-9)
        assert np.linalg.det(rotation) == pytest.approx(1.0, abs=1e-9)

    def test_quat_backward_matches_numeric(self):
        rng = np.random.default_rng(1)
        q = rng.standard_normal((3, 4))
        grad_r = rng.standard_normal((3, 3, 3))
        analytic = quat_rotation_backward(q, grad_r)
        eps = 1e-6
        for n in range(3):
            for i in range(4):
                q_pos = q.copy()
                q_pos[n, i] += eps
                q_neg = q.copy()
                q_neg[n, i] -= eps
                numeric = np.sum(
                    (quat_to_rotation(q_pos)[n] - quat_to_rotation(q_neg)[n])
                    * grad_r[n]
                ) / (2 * eps)
                assert analytic[n, i] == pytest.approx(numeric, abs=1e-6)


class TestCovariance:
    def test_isotropic_from_equal_scales(self):
        cov = build_covariance(
            np.log(np.full((1, 3), 0.5)), np.array([[1.0, 0, 0, 0]])
        )
        np.testing.assert_allclose(cov[0], 0.25 * np.eye(3), atol=1e-12)

    def test_positive_semidefinite(self):
        rng = np.random.default_rng(2)
        cov = build_covariance(
            rng.normal(size=(10, 3)), rng.standard_normal((10, 4))
        )
        eigenvalues = np.linalg.eigvalsh(cov)
        assert (eigenvalues > 0).all()

    def test_rotation_invariant_trace(self):
        """The trace equals the sum of squared scales for any rotation."""
        rng = np.random.default_rng(3)
        log_scales = rng.normal(size=(5, 3))
        quats = rng.standard_normal((5, 4))
        cov = build_covariance(log_scales, quats)
        expected = (np.exp(log_scales) ** 2).sum(axis=1)
        np.testing.assert_allclose(np.trace(cov, axis1=1, axis2=2), expected)

    def test_covariance_backward_matches_numeric(self):
        rng = np.random.default_rng(4)
        log_scales = rng.normal(size=(2, 3)) * 0.3
        quats = rng.standard_normal((2, 4))
        grad_sigma = rng.standard_normal((2, 3, 3))
        grad_sigma = (grad_sigma + grad_sigma.transpose(0, 2, 1)) / 2
        grad_ls, grad_q = covariance_backward(log_scales, quats, grad_sigma)
        eps = 1e-6

        def loss(ls, q):
            return float(np.sum(build_covariance(ls, q) * grad_sigma))

        for n in range(2):
            for i in range(3):
                ls_pos = log_scales.copy()
                ls_pos[n, i] += eps
                ls_neg = log_scales.copy()
                ls_neg[n, i] -= eps
                numeric = (loss(ls_pos, quats) - loss(ls_neg, quats)) / (2 * eps)
                assert grad_ls[n, i] == pytest.approx(numeric, abs=1e-5)
            for i in range(4):
                q_pos = quats.copy()
                q_pos[n, i] += eps
                q_neg = quats.copy()
                q_neg[n, i] -= eps
                numeric = (loss(log_scales, q_pos) - loss(log_scales, q_neg)) / (2 * eps)
                assert grad_q[n, i] == pytest.approx(numeric, abs=1e-5)


class TestScene:
    def test_random_scene_shapes(self):
        scene = GaussianScene.random(17, seed=5)
        assert len(scene) == 17
        assert scene.positions.shape == (17, 3)
        assert scene.quaternions.shape == (17, 4)

    def test_random_scene_deterministic(self):
        a = GaussianScene.random(8, seed=9)
        b = GaussianScene.random(8, seed=9)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            GaussianScene(
                positions=np.zeros((2, 3)),
                log_scales=np.zeros((3, 3)),  # wrong count
                quaternions=np.zeros((2, 4)),
                colors=np.zeros((2, 3)),
                opacity_logits=np.zeros(2),
            )

    def test_zero_gaussians_rejected(self):
        with pytest.raises(ValueError):
            GaussianScene.random(0)

    def test_opacities_in_unit_interval(self):
        scene = GaussianScene.random(50, seed=1)
        assert (scene.opacities > 0).all()
        assert (scene.opacities < 1).all()

    def test_parameters_are_views(self):
        scene = GaussianScene.random(4, seed=2)
        scene.parameters()["colors"][:] = 0.25
        assert (scene.colors == 0.25).all()

    def test_zero_gradients_shapes(self):
        scene = GaussianScene.random(4, seed=2)
        grads = scene.zero_gradients()
        for name, value in scene.parameters().items():
            assert grads[name].shape == value.shape
            assert (grads[name] == 0).all()

    def test_atomic_params_constant(self):
        """The real 3DGS kernel accumulates 9 values atomically."""
        assert GaussianScene.ATOMIC_PARAMS == 9
