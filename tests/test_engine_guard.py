"""Engine regression guard: every cell matches the recorded seed fixture.

``tests/data/engine_guard.json`` was recorded from the engine *before*
telemetry instrumentation landed.  These tests re-simulate the full
fixture matrix -- four synthetic traces x both GPUs x every report
strategy -- and require bit-identical ``SimResult.to_dict()`` output,
both with ``telemetry=None`` (the hot path must be untouched) and with a
live :class:`~repro.gpu.telemetry.Telemetry` collector attached (probes
must observe, never perturb).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.runner import make_strategy
from repro.gpu import SIMULATED_GPUS, Telemetry, simulate_kernel
from repro.trace import (
    coalesced_trace,
    hotspot_trace,
    mixed_locality_trace,
    scattered_trace,
)

FIXTURE = Path(__file__).parent / "data" / "engine_guard.json"

#: Exact trace constructions the fixture was recorded against.
TRACES = {
    "coalesced": lambda: coalesced_trace(
        n_batches=160, n_slots=64, num_params=6, seed=11),
    "mixed": lambda: mixed_locality_trace(
        n_batches=160, n_slots=96, num_params=3, seed=12),
    "scattered": lambda: scattered_trace(
        n_batches=120, n_slots=512, num_params=1, seed=13),
    "hotspot": lambda: hotspot_trace(n_batches=96, num_params=8, seed=14),
}

STRATEGIES = ["baseline", "ARC-HW", "ARC-SW-B-8", "ARC-SW-S-8",
              "CCCL", "LAB", "LAB-ideal", "PHI"]


def load_fixture() -> dict:
    recorded = json.loads(FIXTURE.read_text())
    assert recorded["format"] == 1
    return recorded["results"]


@pytest.mark.parametrize(
    "with_telemetry", [False, True], ids=["telemetry-off", "telemetry-on"]
)
def test_engine_matches_recorded_fixture(with_telemetry):
    recorded = load_fixture()
    seen = set()
    for tname, factory in TRACES.items():
        trace = factory()
        for gpu in SIMULATED_GPUS.values():
            for sname in STRATEGIES:
                if "SW-B" in sname and not trace.bfly_eligible:
                    continue
                key = f"{tname}|{gpu.name}|{sname}"
                seen.add(key)
                telemetry = Telemetry() if with_telemetry else None
                result = simulate_kernel(
                    trace, gpu, make_strategy(sname), telemetry=telemetry
                )
                # Round-trip through JSON exactly as the fixture was
                # written, so "bit-identical" means identical bytes on
                # disk, not merely approximate floats.
                produced = json.loads(json.dumps(result.to_dict()))
                assert produced == recorded[key], key
    assert seen == set(recorded), "fixture matrix drifted"
