"""Engine regression guard: every cell matches the recorded seed fixture.

``tests/data/engine_guard.json`` was recorded from the engine *before*
telemetry instrumentation landed.  These tests re-simulate the full
fixture matrix -- four synthetic traces x both GPUs x every report
strategy -- and require bit-identical ``SimResult.to_dict()`` output,
both with ``telemetry=None`` (the hot path must be untouched) and with a
live :class:`~repro.gpu.telemetry.Telemetry` collector attached (probes
must observe, never perturb).

``tests/data/engine_guard_workloads.json`` widens the net from synthetic
traces to *captured workload* traces -- the histogram workload and a
small 3DGS render capture -- across **every** registered strategy
(all ARC-SW thresholds included, not just the report set).  This is the
bit-identity safety net ROADMAP item 1's engine rewrite works against:
any fast path must reproduce these cells byte for byte.  When engine
*behaviour* changes deliberately, re-record with::

    PYTHONPATH=src python tests/test_engine_guard.py --record
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.runner import STRATEGY_FACTORIES, make_strategy
from repro.gpu import SIMULATED_GPUS, Telemetry, simulate_kernel
from repro.trace import (
    coalesced_trace,
    hotspot_trace,
    mixed_locality_trace,
    scattered_trace,
)

FIXTURE = Path(__file__).parent / "data" / "engine_guard.json"
WORKLOAD_FIXTURE = (
    Path(__file__).parent / "data" / "engine_guard_workloads.json"
)

#: Exact trace constructions the fixture was recorded against.
TRACES = {
    "coalesced": lambda: coalesced_trace(
        n_batches=160, n_slots=64, num_params=6, seed=11),
    "mixed": lambda: mixed_locality_trace(
        n_batches=160, n_slots=96, num_params=3, seed=12),
    "scattered": lambda: scattered_trace(
        n_batches=120, n_slots=512, num_params=1, seed=13),
    "hotspot": lambda: hotspot_trace(n_batches=96, num_params=8, seed=14),
}

STRATEGIES = ["baseline", "ARC-HW", "ARC-SW-B-8", "ARC-SW-S-8",
              "CCCL", "LAB", "LAB-ideal", "PHI"]


def load_fixture() -> dict:
    recorded = json.loads(FIXTURE.read_text())
    assert recorded["format"] == 1
    return recorded["results"]


# --------------------------------------------------------------------- #
# Strategy x workload grid (captured traces, every registered strategy)
# --------------------------------------------------------------------- #

#: Exact workload captures the grid fixture was recorded against.  The
#: histogram trace is divergent (``bfly_eligible=False``), so SW-B
#: strategies are skipped there exactly as ``strategy_applicable`` does.
WORKLOAD_TRACES = {
    "histogram": lambda: _histogram_workload().capture_trace(),
    "render-gaussian": lambda: _gaussian_workload().capture_trace(),
}

#: The grid runs one GPU but *every* factory-registered strategy --
#: including the ARC-SW threshold sweep the report set leaves out.
GRID_GPU = "3060-Sim"
GRID_STRATEGIES = sorted(STRATEGY_FACTORIES)


def _histogram_workload():
    from repro.workloads import HistogramWorkload

    return HistogramWorkload(n_elements=4096, n_bins=64, smoothness=4,
                             seed=7)


def _gaussian_workload():
    from repro.workloads import GaussianWorkload

    return GaussianWorkload(
        key="guard-3D", dataset="guard", description="guard render capture",
        n_gaussians=64, base_scale=0.15, extent=1.0, width=64, height=64,
        seed=21,
    )


def iter_workload_grid():
    """Yield ``(key, trace, gpu, strategy_name)`` for every grid cell."""
    gpu = SIMULATED_GPUS[GRID_GPU]
    for tname, factory in sorted(WORKLOAD_TRACES.items()):
        trace = factory()
        for sname in GRID_STRATEGIES:
            if "SW-B" in sname and not trace.bfly_eligible:
                continue
            yield f"{tname}|{gpu.name}|{sname}", trace, gpu, sname


def record_workload_fixture(path: Path = WORKLOAD_FIXTURE) -> int:
    """(Re-)record the workload-grid fixture.  Returns the cell count."""
    results = {}
    for key, trace, gpu, sname in iter_workload_grid():
        result = simulate_kernel(trace, gpu, make_strategy(sname))
        results[key] = json.loads(json.dumps(result.to_dict()))
    path.write_text(json.dumps(
        {"format": 1, "results": results}, indent=1, sort_keys=True
    ) + "\n")
    return len(results)


def load_workload_fixture() -> dict:
    recorded = json.loads(WORKLOAD_FIXTURE.read_text())
    assert recorded["format"] == 1
    return recorded["results"]


@pytest.mark.parametrize(
    "with_telemetry", [False, True], ids=["telemetry-off", "telemetry-on"]
)
def test_workload_grid_matches_recorded_fixture(with_telemetry):
    recorded = load_workload_fixture()
    seen = set()
    for key, trace, gpu, sname in iter_workload_grid():
        seen.add(key)
        telemetry = Telemetry() if with_telemetry else None
        result = simulate_kernel(
            trace, gpu, make_strategy(sname), telemetry=telemetry
        )
        produced = json.loads(json.dumps(result.to_dict()))
        assert produced == recorded[key], key
    assert seen == set(recorded), "workload grid drifted"


def test_workload_grid_covers_every_registered_strategy():
    """The grid must widen, never silently narrow, with the registry."""
    recorded = load_workload_fixture()
    strategies_in_fixture = {key.split("|")[2] for key in recorded}
    assert strategies_in_fixture == set(STRATEGY_FACTORIES)
    # The render trace is butterfly-eligible, so SW-B rows exist there.
    assert any(key.startswith("render-gaussian|") and "SW-B" in key
               for key in recorded)
    # ...and are correctly absent from the divergent histogram trace.
    assert not any(key.startswith("histogram|") and "SW-B" in key
                   for key in recorded)


@pytest.mark.parametrize(
    "with_telemetry", [False, True], ids=["telemetry-off", "telemetry-on"]
)
def test_engine_matches_recorded_fixture(with_telemetry):
    recorded = load_fixture()
    seen = set()
    for tname, factory in TRACES.items():
        trace = factory()
        for gpu in SIMULATED_GPUS.values():
            for sname in STRATEGIES:
                if "SW-B" in sname and not trace.bfly_eligible:
                    continue
                key = f"{tname}|{gpu.name}|{sname}"
                seen.add(key)
                telemetry = Telemetry() if with_telemetry else None
                result = simulate_kernel(
                    trace, gpu, make_strategy(sname), telemetry=telemetry
                )
                # Round-trip through JSON exactly as the fixture was
                # written, so "bit-identical" means identical bytes on
                # disk, not merely approximate floats.
                produced = json.loads(json.dumps(result.to_dict()))
                assert produced == recorded[key], key
    assert seen == set(recorded), "fixture matrix drifted"


if __name__ == "__main__":
    import sys

    if "--record" in sys.argv:
        count = record_workload_fixture()
        print(f"recorded {count} cells -> {WORKLOAD_FIXTURE}")
    else:
        print(__doc__)
