"""Telemetry collection: opt-in, deterministic, and result-neutral.

The engine contract under test (ISSUE tentpole): attaching a
:class:`~repro.gpu.telemetry.Telemetry` collector changes *nothing*
about the simulation -- event order, stall accounting, every
``SimResult`` field -- across all strategies and both GPU configs, and
everything it records is stamped in simulated shader cycles bounded by
the kernel's duration.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import make_strategy
from repro.gpu import PHASES, SIMULATED_GPUS, Telemetry, simulate_kernel
from repro.trace import coalesced_trace, hotspot_trace, scattered_trace

ALL_STRATEGIES = ["baseline", "ARC-HW", "ARC-SW-B-8", "ARC-SW-S-8",
                  "CCCL", "LAB", "LAB-ideal", "PHI"]


def small_traces():
    """One trace per locality regime, sized for sub-second simulation."""
    return [
        coalesced_trace(n_batches=64, n_slots=64, num_params=4, seed=3),
        scattered_trace(n_batches=48, n_slots=256, num_params=2, seed=4),
        hotspot_trace(n_batches=40, num_params=4, seed=5),
    ]


@pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
def test_results_bit_identical_with_telemetry_on(strategy_name):
    """Every strategy x both GPUs: telemetry on == telemetry off."""
    for trace in small_traces():
        if "SW-B" in strategy_name and not trace.bfly_eligible:
            continue
        for gpu in SIMULATED_GPUS.values():
            off = simulate_kernel(trace, gpu, make_strategy(strategy_name))
            on = simulate_kernel(
                trace, gpu, make_strategy(strategy_name),
                telemetry=Telemetry(),
            )
            assert (
                json.dumps(off.to_dict(), sort_keys=True)
                == json.dumps(on.to_dict(), sort_keys=True)
            ), f"{trace.name} on {gpu.name}"


def test_recording_is_deterministic():
    """Two instrumented runs of the same cell record identical payloads."""
    trace = hotspot_trace(n_batches=40, num_params=4, seed=5)
    gpu = SIMULATED_GPUS["3060-Sim"]
    payloads = []
    for _ in range(2):
        telemetry = Telemetry()
        simulate_kernel(trace, gpu, make_strategy("baseline"),
                        telemetry=telemetry)
        payloads.append(json.dumps(telemetry.as_dict(), sort_keys=True))
    assert payloads[0] == payloads[1]


def test_attach_and_finish_stamp_meta():
    trace = coalesced_trace(n_batches=64, n_slots=64, num_params=4, seed=3)
    gpu = SIMULATED_GPUS["4090-Sim"]
    telemetry = Telemetry()
    result = simulate_kernel(trace, gpu, make_strategy("ARC-HW"),
                             telemetry=telemetry)
    meta = telemetry.meta
    assert meta["trace_name"] == trace.name
    assert meta["gpu"] == "4090-Sim"
    assert meta["strategy"] == "ARC-HW"
    assert meta["n_batches"] == trace.n_batches
    assert meta["lsu_queue_depth"] == gpu.lsu_queue_depth
    assert meta["total_cycles"] == result.total_cycles
    assert meta["lsu_full_events"] == result.lsu_full_events
    assert telemetry.total_cycles == result.total_cycles


def test_records_are_simulation_time_bounded():
    """Every span and busy interval lies within [0, total_cycles] with
    start <= end, phases come from the documented vocabulary, and
    sub-core / batch ids are in range."""
    trace = scattered_trace(n_batches=48, n_slots=256, num_params=2, seed=4)
    gpu = SIMULATED_GPUS["3060-Sim"]
    telemetry = Telemetry()
    result = simulate_kernel(trace, gpu, make_strategy("ARC-HW"),
                             telemetry=telemetry)
    horizon = result.total_cycles
    n_subcores = gpu.num_sms * gpu.subcores_per_sm

    assert telemetry.spans, "an active kernel must record spans"
    for subcore, warp, batch, phase, start, end in telemetry.spans:
        assert phase in PHASES
        assert 0 <= subcore < n_subcores
        assert 0 <= batch < trace.n_batches
        assert 0 <= start <= end <= horizon

    for sm, start, end in telemetry.lsu_intervals:
        assert 0 <= sm < gpu.num_sms
        assert 0 <= start <= end <= horizon
    for partition, slot, ops, start, end in telemetry.rop_intervals:
        assert 0 <= partition < gpu.num_partitions
        assert slot >= 0 and ops >= 1
        assert 0 <= start <= end <= horizon
    for start, end in telemetry.ic_intervals:
        assert 0 <= start <= end <= horizon
    for subcore, start, end in telemetry.ru_intervals:
        assert 0 <= subcore < n_subcores
        assert 0 <= start <= end <= horizon
    # ARC-HW routes reductions through the per-sub-core FPUs.
    assert telemetry.ru_intervals


def test_as_dict_round_trips():
    trace = hotspot_trace(n_batches=40, num_params=4, seed=5)
    gpu = SIMULATED_GPUS["3060-Sim"]
    telemetry = Telemetry()
    simulate_kernel(trace, gpu, make_strategy("PHI"), telemetry=telemetry)

    payload = telemetry.as_dict()
    rebuilt = Telemetry.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt.meta == telemetry.meta
    assert rebuilt.spans == telemetry.spans
    assert rebuilt.lsu_intervals == telemetry.lsu_intervals
    assert rebuilt.rop_intervals == telemetry.rop_intervals
    assert rebuilt.ic_intervals == telemetry.ic_intervals
    assert rebuilt.ru_intervals == telemetry.ru_intervals

    with pytest.raises(ValueError):
        Telemetry.from_dict({"format": 99})
