"""Tests for the tile rasterizer: compositing, termination, traces."""

import numpy as np
import pytest

from repro.render.rasterizer import (
    ALPHA_MIN,
    N_SCREEN_PARAMS,
    SKIP_CYCLES,
    T_MIN,
    TILE,
    WARPS_PER_TILE,
    Splats,
    rasterize,
    rasterize_backward,
)
from repro.trace.events import INACTIVE


def make_splats(mean2d, colors=None, depth=None, sigma=4.0, opacity=0.8):
    mean2d = np.atleast_2d(np.asarray(mean2d, dtype=float))
    n = len(mean2d)
    inv_var = 1.0 / sigma**2
    return Splats(
        mean2d=mean2d,
        conic=np.tile([inv_var, 0.0, inv_var], (n, 1)),
        radius=np.full(n, 3.0 * sigma),
        depth=np.arange(n, dtype=float) + 1 if depth is None else np.asarray(depth, float),
        colors=np.tile([1.0, 0.5, 0.25], (n, 1)) if colors is None else np.asarray(colors, float),
        opacities=np.full(n, opacity),
    )


class TestForward:
    def test_dimension_validation(self):
        splats = make_splats([[8.0, 8.0]])
        with pytest.raises(ValueError):
            rasterize(splats, 30, 32)

    def test_background_fills_empty_image(self):
        splats = make_splats([[8.0, 8.0]])
        splats.radius[:] = 0.0  # disabled
        out = rasterize(splats, 32, 32, background=np.array([0.1, 0.2, 0.3]))
        np.testing.assert_allclose(
            out.image, np.broadcast_to([0.1, 0.2, 0.3], out.image.shape)
        )

    def test_single_splat_peak_at_center(self):
        splats = make_splats([[16.0, 16.0]])
        out = rasterize(splats, 32, 32)
        peak = out.image[:, :, 0].max()
        y, x = np.unravel_index(out.image[:, :, 0].argmax(),
                                out.image.shape[:2])
        assert peak == pytest.approx(0.8 * 1.0, abs=0.05)
        assert abs(x - 16) <= 1 and abs(y - 16) <= 1

    def test_image_in_unit_range(self):
        rng = np.random.default_rng(0)
        splats = make_splats(rng.uniform(0, 64, size=(30, 2)))
        out = rasterize(splats, 64, 64)
        assert out.image.min() >= 0.0
        assert out.image.max() <= 1.0 + 1e-9

    def test_front_to_back_order_occludes(self):
        """An opaque near splat hides a far one at the shared center."""
        near_first = make_splats(
            [[16.0, 16.0], [16.0, 16.0]],
            colors=[[1, 0, 0], [0, 1, 0]],
            depth=[1.0, 2.0], opacity=0.98,
        )
        out = rasterize(near_first, 32, 32)
        center = out.image[16, 16]
        assert center[0] > 10 * center[1]  # red dominates

    def test_depth_sorting_independent_of_input_order(self):
        a = make_splats([[16.0, 16.0], [16.0, 16.0]],
                        colors=[[1, 0, 0], [0, 1, 0]], depth=[1.0, 2.0])
        b = make_splats([[16.0, 16.0], [16.0, 16.0]],
                        colors=[[0, 1, 0], [1, 0, 0]], depth=[2.0, 1.0])
        np.testing.assert_allclose(
            rasterize(a, 32, 32).image, rasterize(b, 32, 32).image,
            atol=1e-12,
        )

    def test_transmittance_terminates_deep_stacks(self):
        """Once T < T_MIN, later splats contribute exactly nothing."""
        n = 40
        splats = make_splats(
            np.tile([16.0, 16.0], (n, 1)),
            colors=np.tile([0.5, 0.5, 0.5], (n, 1)),
            depth=np.arange(n, dtype=float),
            opacity=0.9,
        )
        out = rasterize(splats, 32, 32)
        [tile] = [t for t in out.tiles if t.x0 == 16 and t.y0 == 16]
        # Global pixel (16, 16) is local (0, 0) of this tile.
        alphas = tile.alpha[0]
        # With alpha 0.9, T crosses 1e-4 after ~4 splats: the tail is zero.
        assert (alphas[8:] == 0.0).all()
        assert alphas[0] > 0

    def test_alpha_min_threshold_drops_faint_contributions(self):
        splats = make_splats([[16.0, 16.0]], opacity=ALPHA_MIN * 0.9)
        out = rasterize(splats, 32, 32)
        assert out.image.max() == 0.0

    def test_forward_pairs_counts_tile_work(self):
        splats = make_splats([[16.0, 16.0]])
        out = rasterize(splats, 64, 64)
        # sigma=4 -> radius 12 -> covers the 4 tiles around the corner...
        # here centered in tile (1,1): extent spans several tiles.
        assert out.n_pixel_splat_pairs % (TILE * TILE) == 0
        assert out.n_pixel_splat_pairs > 0


class TestBackward:
    def run_case(self, capture=False, with_values=False):
        rng = np.random.default_rng(1)
        splats = make_splats(rng.uniform(4, 28, size=(6, 2)), sigma=3.0)
        splats.colors[:] = rng.uniform(0.2, 0.8, size=(6, 3))
        out = rasterize(splats, 32, 32)
        grad_image = rng.standard_normal(out.image.shape) * 1e-2
        backward = rasterize_backward(
            out, grad_image, capture_trace=capture, with_values=with_values
        )
        return splats, out, grad_image, backward

    def test_shapes(self):
        splats, _, _, backward = self.run_case()
        assert backward.grad_mean2d.shape == (6, 2)
        assert backward.grad_conic.shape == (6, 3)
        assert backward.grad_colors.shape == (6, 3)
        assert backward.grad_opacities.shape == (6,)
        assert backward.trace is None

    def test_grad_image_shape_checked(self):
        splats, out, _, _ = self.run_case()
        with pytest.raises(ValueError):
            rasterize_backward(out, np.zeros((8, 8, 3)))

    def test_color_gradient_matches_numeric(self):
        splats, out, grad_image, backward = self.run_case()
        eps = 1e-6
        index = int(np.abs(backward.grad_colors[:, 0]).argmax())
        splats.colors[index, 0] += eps
        plus = rasterize(splats, 32, 32).image
        splats.colors[index, 0] -= 2 * eps
        minus = rasterize(splats, 32, 32).image
        splats.colors[index, 0] += eps
        numeric = float(np.sum((plus - minus) * grad_image) / (2 * eps))
        assert backward.grad_colors[index, 0] == pytest.approx(
            numeric, rel=1e-5, abs=1e-10
        )

    def test_mean_gradient_matches_numeric(self):
        splats, out, grad_image, backward = self.run_case()
        eps = 1e-6
        index = int(np.abs(backward.grad_mean2d[:, 0]).argmax())
        splats.mean2d[index, 0] += eps
        plus = rasterize(splats, 32, 32).image
        splats.mean2d[index, 0] -= 2 * eps
        minus = rasterize(splats, 32, 32).image
        splats.mean2d[index, 0] += eps
        numeric = float(np.sum((plus - minus) * grad_image) / (2 * eps))
        assert backward.grad_mean2d[index, 0] == pytest.approx(
            numeric, rel=1e-5, abs=1e-10
        )

    def test_trace_structure(self):
        splats, out, _, backward = self.run_case(capture=True)
        trace = backward.trace
        assert trace is not None
        assert trace.num_params == N_SCREEN_PARAMS
        # One batch per (tile, splat, warp).
        expected = sum(
            len(t.splat_ids) * WARPS_PER_TILE for t in out.raster.tiles
        ) if hasattr(out, "raster") else trace.n_batches
        assert trace.n_batches == sum(
            len(t.splat_ids) * WARPS_PER_TILE for t in out.tiles
        )
        assert trace.lane_slots.max() < len(splats)

    def test_trace_compute_cycles_distinguish_empty_warps(self):
        _, _, _, backward = self.run_case(capture=True)
        trace = backward.trace
        compute = trace.compute_cycles_per_batch
        empty = trace.active_lane_counts == 0
        assert (compute[empty] == SKIP_CYCLES).all()
        if (~empty).any():
            assert (compute[~empty] > SKIP_CYCLES).all()

    def test_trace_values_sum_to_screen_gradients(self):
        """The captured per-lane values scatter-add to the same gradients
        the backward pass reports -- the atomics' ground truth."""
        splats, _, _, backward = self.run_case(capture=True,
                                               with_values=True)
        sums = backward.trace.reference_sums()
        np.testing.assert_allclose(sums[:, 0], backward.grad_mean2d[:, 0],
                                   atol=1e-12)
        np.testing.assert_allclose(sums[:, 5:8], backward.grad_colors,
                                   atol=1e-12)
        np.testing.assert_allclose(sums[:, 8], backward.grad_opacities,
                                   atol=1e-12)

    def test_trace_batches_back_to_front_per_warp(self):
        """The backward kernel walks splats back-to-front (paper Fig. 5)."""
        splats, out, _, backward = self.run_case(capture=True)
        trace = backward.trace
        [first_tile] = out.tiles[:1]
        warp0 = trace.warp_id == first_tile.tile_index * WARPS_PER_TILE
        slots = trace.lane_slots[warp0]
        # Each batch's slot (where any lane is active) must follow the
        # reversed depth order of the tile's splat list.
        reversed_ids = first_tile.splat_ids[::-1]
        for batch, expected in zip(slots, reversed_ids):
            active = batch[batch != INACTIVE]
            if len(active):
                assert (active == expected).all()
