"""Tests for EWA projection of 3D Gaussians and its backward pass."""

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.gaussians import GaussianScene
from repro.render.projection import (
    EPS_2D,
    project_backward,
    project_gaussians,
)


def simple_setup(n=6, seed=0):
    scene = GaussianScene.random(n, extent=0.5, seed=seed, base_scale=0.1)
    camera = Camera.looking_at([0, 0, -3.0], [0, 0, 0], width=64, height=64)
    return scene, camera


class TestForward:
    def test_shapes(self):
        scene, camera = simple_setup()
        projected = project_gaussians(scene, camera)
        assert projected.mean2d.shape == (6, 2)
        assert projected.conic.shape == (6, 3)
        assert projected.valid.all()

    def test_center_gaussian_projects_to_image_center(self):
        scene = GaussianScene.random(1, seed=1)
        scene.positions[0] = 0.0
        camera = Camera.looking_at([0, 0, -3.0], [0, 0, 0],
                                   width=64, height=64)
        projected = project_gaussians(scene, camera)
        np.testing.assert_allclose(
            projected.mean2d[0], [camera.cx, camera.cy], atol=1e-9
        )
        assert projected.depth[0] == pytest.approx(3.0)

    def test_behind_camera_culled(self):
        scene = GaussianScene.random(2, seed=2)
        scene.positions[0] = [0, 0, -10.0]  # behind the camera
        scene.positions[1] = [0, 0, 0]
        camera = Camera.looking_at([0, 0, -3.0], [0, 0, 0])
        projected = project_gaussians(scene, camera)
        assert not projected.valid[0]
        assert projected.valid[1]
        assert projected.radius[0] == 0.0
        assert projected.radius[1] > 0.0

    def test_conic_inverts_cov2d(self):
        scene, camera = simple_setup()
        projected = project_gaussians(scene, camera)
        for n in range(len(scene)):
            conic_mat = np.array([
                [projected.conic[n, 0], projected.conic[n, 1]],
                [projected.conic[n, 1], projected.conic[n, 2]],
            ])
            np.testing.assert_allclose(
                conic_mat @ projected.cov2d[n], np.eye(2), atol=1e-8
            )

    def test_dilation_keeps_cov2d_positive_definite(self):
        """The +EPS_2D screen dilation guarantees invertibility even for
        degenerate (needle-thin) Gaussians."""
        scene = GaussianScene.random(4, seed=3)
        scene.log_scales[:] = np.log([1e-6, 1e-6, 1e-6])
        camera = Camera.looking_at([0, 0, -3.0], [0, 0, 0])
        projected = project_gaussians(scene, camera)
        determinants = (
            projected.cov2d[:, 0, 0] * projected.cov2d[:, 1, 1]
            - projected.cov2d[:, 0, 1] ** 2
        )
        assert (determinants >= EPS_2D**2 * 0.99).all()

    def test_closer_gaussian_has_larger_footprint(self):
        scene = GaussianScene.random(2, seed=4)
        scene.positions[0] = [0, 0, -1.0]  # closer to the camera
        scene.positions[1] = [0, 0, 1.5]
        scene.log_scales[:] = np.log(0.1)
        scene.quaternions[:] = [1.0, 0, 0, 0]
        camera = Camera.looking_at([0, 0, -3.0], [0, 0, 0])
        projected = project_gaussians(scene, camera)
        assert projected.radius[0] > projected.radius[1]


class TestBackward:
    def test_culled_gaussians_get_zero_gradients(self):
        scene, camera = simple_setup()
        scene.positions[0] = [0, 0, -10.0]
        projected = project_gaussians(scene, camera)
        rng = np.random.default_rng(0)
        grads = project_backward(
            scene, camera, projected,
            rng.standard_normal((6, 2)), rng.standard_normal((6, 3)),
        )
        assert (grads["positions"][0] == 0).all()
        assert (grads["log_scales"][0] == 0).all()
        assert (grads["quaternions"][0] == 0).all()

    @pytest.mark.parametrize("param", ["positions", "log_scales",
                                       "quaternions"])
    def test_gradients_match_numeric(self, param):
        """Full chain check: mean2d/conic upstream -> 3D parameters."""
        scene, camera = simple_setup(n=3, seed=7)
        rng = np.random.default_rng(8)
        grad_mean2d = rng.standard_normal((3, 2))
        grad_conic = rng.standard_normal((3, 3))

        def loss():
            projected = project_gaussians(scene, camera)
            return float(
                np.sum(projected.mean2d * grad_mean2d)
                + np.sum(projected.conic * grad_conic)
            )

        projected = project_gaussians(scene, camera)
        analytic = project_backward(
            scene, camera, projected, grad_mean2d, grad_conic
        )[param]
        array = scene.parameters()[param]
        eps = 1e-6
        flat = array.reshape(-1)
        for i in rng.choice(flat.size, size=min(8, flat.size),
                            replace=False):
            original = flat[i]
            flat[i] = original + eps
            plus = loss()
            flat[i] = original - eps
            minus = loss()
            flat[i] = original
            numeric = (plus - minus) / (2 * eps)
            assert analytic.reshape(-1)[i] == pytest.approx(
                numeric, rel=1e-4, abs=1e-7
            )
