"""Drive the seeded-mutant fixture corpus (:mod:`tests.lint_fixtures`).

Every positive fixture must produce findings for exactly its rule (a
cross-firing fixture is a bad fixture: it would mask regressions in the
rule it claims to cover); every negative must be completely clean.  The
meta-test at the bottom closes the loop: a rule registered without both
kinds of fixture fails the suite, so the corpus can never silently fall
behind the rule set.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import run_lint, rule_ids
from tests.lint_fixtures import CASES, FixtureCase


def _materialize(root: Path, case: FixtureCase) -> Path:
    for rel, source in case.files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.id)
def test_fixture(case: FixtureCase, tmp_path):
    report = run_lint([_materialize(tmp_path, case)])
    found = {finding.rule for finding in report.new}
    if case.kind == "positive":
        assert found == {case.rule}, (
            f"{case.id}: expected only {case.rule}, got {sorted(found)}: "
            + "; ".join(f"{f.rule} {f.path}:{f.line} {f.message}"
                        for f in report.new)
        )
        if case.expect is not None:
            assert any(case.expect in f.message for f in report.new), (
                f"{case.id}: no message contains {case.expect!r}"
            )
    else:
        assert report.new == [], (
            f"{case.id}: negative fixture must be clean, got: "
            + "; ".join(f"{f.rule} {f.path}:{f.line} {f.message}"
                        for f in report.new)
        )


def test_fixture_ids_are_unique():
    ids = [case.id for case in CASES]
    assert len(ids) == len(set(ids))


def test_every_rule_has_positive_and_negative_fixtures():
    for rule in rule_ids():
        kinds = {case.kind for case in CASES if case.rule == rule}
        assert kinds == {"positive", "negative"}, (
            f"{rule} is missing fixture kind(s): "
            f"{sorted({'positive', 'negative'} - kinds)}"
        )


def test_registry_is_contiguous_through_arc016():
    """The corpus meta-test is only as strong as the registry it walks:
    if a rule module silently stopped registering, the loop above would
    happily check fewer rules.  Pin the expected id range."""
    expected = {f"ARC{i:03d}" for i in range(1, 17)}
    assert expected <= set(rule_ids())


def test_fixtures_cover_no_unregistered_rules():
    registered = set(rule_ids())
    orphaned = {case.rule for case in CASES} - registered
    assert not orphaned, f"fixtures for unregistered rules: {orphaned}"
