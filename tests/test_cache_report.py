"""Tests for the L2 residency model (§3.2's 97% hit-rate observation)."""

import dataclasses

import pytest

from repro.gpu import RTX3060_SIM, RTX4090_SIM
from repro.gpu.cache import CacheReport, gradient_buffer_bytes, l2_report
from repro.trace import coalesced_trace


def test_footprint_arithmetic():
    trace = coalesced_trace(n_batches=10, n_slots=1000, num_params=9)
    assert gradient_buffer_bytes(trace) == 1000 * 9 * 4


def test_small_buffer_hits_after_cold_misses():
    """A resident gradient buffer gives near-perfect hit rates, matching
    the paper's 97% L2 measurement."""
    trace = coalesced_trace(
        n_batches=20_000, n_slots=2000, num_params=9, mean_active=12
    )
    for config in (RTX4090_SIM, RTX3060_SIM):
        report = l2_report(trace, config)
        assert report.fits_in_l2
        assert report.hit_rate > 0.97, (config.name, report.hit_rate)


def test_oversized_buffer_misses():
    trace = coalesced_trace(
        n_batches=200, n_slots=3_000_000, num_params=9, mean_active=12
    )
    tiny_l2 = dataclasses.replace(RTX3060_SIM, l2_mib=1.0)
    report = l2_report(trace, tiny_l2)
    assert not report.fits_in_l2
    assert report.hit_rate < 0.5


def test_hit_rate_monotone_in_l2_size():
    trace = coalesced_trace(
        n_batches=500, n_slots=200_000, num_params=9, mean_active=12
    )
    small = l2_report(trace, dataclasses.replace(RTX3060_SIM, l2_mib=2.0))
    large = l2_report(trace, dataclasses.replace(RTX3060_SIM, l2_mib=64.0))
    assert large.hit_rate >= small.hit_rate


def test_empty_trace():
    trace = coalesced_trace(n_batches=0, n_slots=10, num_params=1)
    report = l2_report(trace, RTX4090_SIM)
    assert report.accesses == 0
    assert report.hit_rate == 0.0


def test_misses_never_exceed_accesses():
    trace = coalesced_trace(
        n_batches=5, n_slots=1_000_000, num_params=9, mean_active=1
    )
    report = l2_report(trace, dataclasses.replace(RTX3060_SIM, l2_mib=1.0))
    assert 0 <= report.misses <= report.accesses


def test_report_is_frozen():
    report = CacheReport(1, 2, 3, 1)
    with pytest.raises(dataclasses.FrozenInstanceError):
        report.misses = 0
