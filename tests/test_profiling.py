"""Tests for profiling: phase breakdowns (Fig 4) and stall reports (Fig 8)."""

import pytest

from repro.core import ArcSWButterfly, BaselineAtomic
from repro.gpu import RTX3060_SIM, RTX4090_SIM, simulate_kernel
from repro.profiling import (
    PhaseBreakdown,
    atomic_stall_reduction,
    compute_kernel_cycles,
    stall_report,
    training_breakdown,
)
from repro.trace import coalesced_trace


@pytest.fixture(scope="module")
def trace():
    return coalesced_trace(
        n_batches=5000, n_slots=300, num_params=9, mean_active=12, seed=1,
        name="unit",
    )


class TestComputeKernel:
    def test_scales_with_work_and_parallelism(self):
        cycles = compute_kernel_cycles(1_000_000, 10.0, RTX4090_SIM)
        assert cycles == pytest.approx(1_000_000 * 10 / 512)
        more_parallel = compute_kernel_cycles(1_000_000, 10.0, RTX3060_SIM)
        assert more_parallel > cycles  # fewer sub-cores -> slower

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            compute_kernel_cycles(-1, 10.0, RTX4090_SIM)


class TestBreakdown:
    def test_fractions_sum_to_one(self, trace):
        breakdown = training_breakdown(
            trace, forward_pairs=500_000, n_pixels=9216, config=RTX3060_SIM
        )
        assert sum(breakdown.fractions.values()) == pytest.approx(1.0)
        assert breakdown.total_cycles > 0

    def test_grad_fraction_grows_with_atomic_traffic(self):
        light = coalesced_trace(n_batches=500, num_params=9, seed=2)
        heavy = coalesced_trace(n_batches=5000, num_params=9, seed=2)
        kwargs = dict(forward_pairs=300_000, n_pixels=9216,
                      config=RTX3060_SIM)
        assert (
            training_breakdown(heavy, **kwargs).grad_fraction
            > training_breakdown(light, **kwargs).grad_fraction
        )

    def test_launch_scaling(self, trace):
        one = training_breakdown(
            trace, forward_pairs=100_000, n_pixels=9216,
            config=RTX3060_SIM, launches=1,
        )
        two = training_breakdown(
            trace, forward_pairs=100_000, n_pixels=9216,
            config=RTX3060_SIM, launches=2,
        )
        assert two.forward_cycles == pytest.approx(2 * one.forward_cycles)
        assert two.grad_cycles == one.grad_cycles  # trace already covers it

    def test_invalid_launches(self, trace):
        with pytest.raises(ValueError):
            training_breakdown(trace, 1, 1, RTX3060_SIM, launches=0)

    def test_end_to_end_speedup_amdahl(self):
        breakdown = PhaseBreakdown("w", "g", forward_cycles=50.0,
                                   loss_cycles=0.0, grad_cycles=50.0)
        assert breakdown.end_to_end_speedup(2.0) == pytest.approx(100 / 75)
        # Infinite grad speedup caps at total/other.
        assert breakdown.end_to_end_speedup(1e12) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            breakdown.end_to_end_speedup(0.0)

    def test_empty_breakdown_fractions(self):
        empty = PhaseBreakdown("w", "g", 0.0, 0.0, 0.0)
        assert empty.fractions == {"forward": 0.0, "loss": 0.0, "grad": 0.0}


class TestStallReports:
    def test_report_fields(self, trace):
        result = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
        report = stall_report(result)
        assert report.strategy == "baseline"
        assert report.stalls_per_instruction >= 0
        assert 0 <= report.lsu_fraction <= 1

    def test_arc_reduces_atomic_stalls(self, trace):
        baseline = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
        arc = simulate_kernel(trace, RTX3060_SIM, ArcSWButterfly(8))
        reduction = atomic_stall_reduction(baseline, arc)
        assert reduction > 1.0
        assert (
            stall_report(arc).stalls_per_instruction
            < stall_report(baseline).stalls_per_instruction
        )

    def test_stall_reduction_requires_same_trace(self, trace):
        other = coalesced_trace(n_batches=10, name="other")
        a = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
        b = simulate_kernel(other, RTX3060_SIM, BaselineAtomic())
        with pytest.raises(ValueError):
            atomic_stall_reduction(a, b)
