"""Tests for KernelTrace and the vectorized address coalescer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gpu.warp import WARP_SIZE, lanes_from_mask
from repro.trace import INACTIVE, KernelTrace, coalesce_trace
from repro.trace.synthetic import coalesced_trace, scattered_trace


def make_trace(lane_slots, **kwargs):
    lane_slots = np.asarray(lane_slots)
    defaults = dict(num_params=2, n_slots=int(lane_slots.max(initial=0)) + 1)
    defaults.update(kwargs)
    return KernelTrace(lane_slots=lane_slots, **defaults)


class TestValidation:
    def test_wrong_lane_width_rejected(self):
        with pytest.raises(ValueError):
            KernelTrace(np.zeros((3, 16), dtype=int), num_params=1, n_slots=1)

    def test_slot_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            KernelTrace(np.full((1, 32), 5), num_params=1, n_slots=5)

    def test_slot_below_inactive_rejected(self):
        with pytest.raises(ValueError):
            KernelTrace(np.full((1, 32), -2), num_params=1, n_slots=1)

    def test_bad_num_params_rejected(self):
        with pytest.raises(ValueError):
            KernelTrace(np.zeros((1, 32), dtype=int), num_params=0, n_slots=1)

    def test_values_shape_checked(self):
        with pytest.raises(ValueError):
            KernelTrace(
                np.zeros((2, 32), dtype=int),
                num_params=3,
                n_slots=1,
                values=np.zeros((2, 32, 2)),
            )

    def test_warp_id_length_checked(self):
        with pytest.raises(ValueError):
            KernelTrace(
                np.zeros((2, 32), dtype=int),
                num_params=1,
                n_slots=1,
                warp_id=np.zeros(3, dtype=int),
            )

    def test_default_warp_id_is_arange(self):
        trace = make_trace(np.zeros((4, 32), dtype=int))
        np.testing.assert_array_equal(trace.warp_id, np.arange(4))


class TestDerived:
    def test_active_lane_counts(self):
        lanes = np.full((2, 32), INACTIVE)
        lanes[0, :5] = 0
        lanes[1, :] = 1
        trace = make_trace(lanes)
        np.testing.assert_array_equal(trace.active_lane_counts, [5, 32])

    def test_total_lane_ops_scales_with_params(self):
        lanes = np.zeros((3, 32), dtype=int)
        trace = make_trace(lanes, num_params=4)
        assert trace.total_lane_ops == 3 * 32 * 4

    def test_reference_sums_requires_values(self):
        trace = make_trace(np.zeros((1, 32), dtype=int))
        with pytest.raises(ValueError):
            trace.reference_sums()

    def test_reference_sums_scatter_add(self):
        lanes = np.full((1, 32), INACTIVE)
        lanes[0, 0] = 0
        lanes[0, 1] = 1
        lanes[0, 2] = 1
        values = np.zeros((1, 32, 1))
        values[0, 0, 0] = 2.0
        values[0, 1, 0] = 3.0
        values[0, 2, 0] = 4.0
        values[0, 5, 0] = 99.0  # inactive lane: must be ignored
        trace = make_trace(lanes, num_params=1, n_slots=2, values=values)
        sums = trace.reference_sums()
        assert sums[0, 0] == 2.0
        assert sums[1, 0] == 7.0

    def test_subsample_smaller_and_stable(self):
        trace = coalesced_trace(n_batches=100, seed=3)
        sub = trace.subsample(10, seed=1)
        assert sub.n_batches == 10
        assert sub.num_params == trace.num_params
        sub2 = trace.subsample(10, seed=1)
        np.testing.assert_array_equal(sub.lane_slots, sub2.lane_slots)

    def test_subsample_noop_when_larger(self):
        trace = coalesced_trace(n_batches=10)
        assert trace.subsample(100) is trace


class TestCoalescer:
    def test_empty_trace(self):
        result = coalesce_trace(np.zeros((0, 32), dtype=int))
        assert result.n_groups == 0
        assert list(result.offsets) == [0]

    def test_all_same_slot_single_group(self):
        lanes = np.full((1, 32), 7)
        result = coalesce_trace(lanes)
        assert result.n_groups == 1
        assert result.slots[0] == 7
        assert result.sizes[0] == 32
        assert result.masks[0] == np.uint64(0xFFFFFFFF)

    def test_all_inactive_no_groups(self):
        lanes = np.full((2, 32), INACTIVE)
        result = coalesce_trace(lanes)
        assert result.n_groups == 0
        assert list(result.offsets) == [0, 0, 0]

    def test_two_groups_with_masks(self):
        lanes = np.full((1, 32), INACTIVE)
        lanes[0, [0, 3]] = 4
        lanes[0, [1, 2, 10]] = 9
        result = coalesce_trace(lanes)
        assert result.n_groups == 2
        by_slot = dict(zip(result.slots, range(2)))
        g4, g9 = by_slot[4], by_slot[9]
        assert result.sizes[g4] == 2
        assert result.sizes[g9] == 3
        assert lanes_from_mask(int(result.masks[g4])) == [0, 3]
        assert lanes_from_mask(int(result.masks[g9])) == [1, 2, 10]

    def test_offsets_partition_groups(self):
        trace = scattered_trace(n_batches=50, seed=2)
        result = trace.coalesced
        assert result.offsets[0] == 0
        assert result.offsets[-1] == result.n_groups
        assert (np.diff(result.offsets) >= 0).all()

    def test_coalesced_is_cached(self):
        trace = coalesced_trace(n_batches=5)
        assert trace.coalesced is trace.coalesced


@st.composite
def lane_slot_arrays(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    return draw(
        hnp.arrays(
            dtype=np.int64,
            shape=(n, WARP_SIZE),
            elements=st.integers(min_value=INACTIVE, max_value=6),
        )
    )


@given(lane_slot_arrays())
@settings(max_examples=60, deadline=None)
def test_coalescer_invariants(lane_slots):
    """Group sizes sum to active lanes; masks are disjoint and consistent."""
    result = coalesce_trace(lane_slots)
    active = (lane_slots != INACTIVE).sum()
    assert result.sizes.sum() == active
    for batch in range(len(lane_slots)):
        groups = result.groups_of(batch)
        slots = result.slots[groups]
        assert len(set(slots.tolist())) == len(slots), "slots unique per batch"
        combined = 0
        for slot, size, mask in zip(
            slots, result.sizes[groups], result.masks[groups]
        ):
            mask = int(mask)
            assert combined & mask == 0, "lane masks must be disjoint"
            combined |= mask
            lanes = lanes_from_mask(mask)
            assert len(lanes) == size
            assert all(lane_slots[batch, lane] == slot for lane in lanes)
        expected = {
            lane for lane in range(WARP_SIZE) if lane_slots[batch, lane] != INACTIVE
        }
        assert set(lanes_from_mask(combined)) == expected
