"""Tests for the experiment runner (caching, matrices) and reporting."""

import pytest

from repro.experiments import runner
from repro.experiments.report import format_speedup_matrix, format_table
from repro.experiments.runner import (
    STRATEGY_FACTORIES,
    arithmetic_mean,
    best_threshold,
    clear_caches,
    get_result,
    get_trace,
    get_workload,
    run_matrix,
    speedups_over_baseline,
    strategy_applicable,
)
from repro.trace import coalesced_trace, scattered_trace


@pytest.fixture(autouse=True)
def isolated_caches(monkeypatch):
    """Swap in a fake tiny workload registry so tests stay fast."""
    clear_caches()

    class FakeWorkload:
        def __init__(self, key, bfly=True):
            self.key = key
            self._bfly = bfly
            self.captures = 0

        def capture_trace(self):
            self.captures += 1
            factory = coalesced_trace if self._bfly else scattered_trace
            trace = factory(n_batches=400, num_params=4, seed=1,
                            name=self.key)
            if not self._bfly:
                trace = trace  # scattered traces are already ineligible
            return trace

    fakes = {"W1": FakeWorkload("W1"), "W2": FakeWorkload("W2", bfly=False)}
    monkeypatch.setattr(runner, "load_workload", lambda key: fakes[key])
    yield fakes
    clear_caches()


class TestCaching:
    def test_workload_memoized(self, isolated_caches):
        assert get_workload("W1") is get_workload("W1")

    def test_trace_captured_once(self, isolated_caches):
        get_trace("W1")
        get_trace("W1")
        assert isolated_caches["W1"].captures == 1

    def test_result_memoized(self, isolated_caches):
        a = get_result("W1", "4090-Sim", "baseline")
        b = get_result("W1", "4090-Sim", "baseline")
        assert a is b

    def test_distinct_cells_distinct_results(self, isolated_caches):
        a = get_result("W1", "4090-Sim", "baseline")
        b = get_result("W1", "3060-Sim", "baseline")
        c = get_result("W1", "4090-Sim", "ARC-HW")
        assert a is not b and a is not c

    def test_unknown_strategy_rejected(self, isolated_caches):
        with pytest.raises(KeyError):
            get_result("W1", "4090-Sim", "warp-magic")

    def test_clear_caches(self, isolated_caches):
        get_trace("W1")
        clear_caches()
        get_trace("W1")
        assert isolated_caches["W1"].captures == 2


class TestMatrix:
    def test_strategy_registry_contents(self):
        assert "baseline" in STRATEGY_FACTORIES
        assert "ARC-HW" in STRATEGY_FACTORIES
        assert "ARC-SW-B-16" in STRATEGY_FACTORIES
        assert "ARC-SW-S-0" in STRATEGY_FACTORIES

    def test_run_matrix_skips_inapplicable_swb(self, isolated_caches):
        cells = run_matrix(["W1", "W2"], ["baseline", "ARC-SW-B-8"],
                           ["3060-Sim"])
        combos = {(c.workload, c.strategy) for c in cells}
        assert ("W1", "ARC-SW-B-8") in combos
        assert ("W2", "ARC-SW-B-8") not in combos  # divergent kernel
        assert ("W2", "baseline") in combos

    def test_strategy_applicable(self, isolated_caches):
        assert strategy_applicable("W1", "ARC-SW-B-8")
        assert not strategy_applicable("W2", "ARC-SW-B-8")
        assert strategy_applicable("W2", "ARC-SW-S-8")

    def test_speedups_over_baseline(self, isolated_caches):
        cells = run_matrix(["W1"], ["baseline", "ARC-HW"], ["3060-Sim"])
        speedups = speedups_over_baseline(cells)
        assert set(speedups) == {("W1", "3060-Sim", "ARC-HW")}
        assert speedups[("W1", "3060-Sim", "ARC-HW")] > 0

    def test_best_threshold_picks_minimum(self, isolated_caches):
        best = best_threshold("W1", "3060-Sim", variant="B")
        cycles = {
            x: get_result("W1", "3060-Sim", f"ARC-SW-B-{x}").total_cycles
            for x in runner.SWEEP_THRESHOLDS
        }
        assert cycles[best] == min(cycles.values())

    def test_best_threshold_variant_validated(self, isolated_caches):
        with pytest.raises(ValueError):
            best_threshold("W1", "3060-Sim", variant="Z")


class TestReport:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.345], [10, 0.5]])
        lines = text.split("\n")
        assert len({len(line) for line in lines}) == 1  # aligned
        assert "2.35" in text  # float formatting

    def test_format_table_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_speedup_matrix(self):
        speedups = {
            ("W1", "4090-Sim", "ARC-HW"): 2.0,
            ("W1", "3060-Sim", "ARC-HW"): 1.5,
            ("W2", "4090-Sim", "ARC-HW"): 3.0,
        }
        text = format_speedup_matrix(speedups, title="t")
        assert "ARC-HW@4090-Sim" in text
        assert "-" in text.split("\n")[-1]  # missing cell placeholder
