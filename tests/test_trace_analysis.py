"""Tests for trace analysis: the paper's Observations 1 and 2."""

import numpy as np

from repro.gpu.warp import WARP_SIZE
from repro.trace import (
    INACTIVE,
    KernelTrace,
    coalesced_trace,
    mixed_locality_trace,
    scattered_trace,
)
from repro.trace.analysis import (
    active_thread_histogram,
    intra_warp_locality,
    profile_trace,
)


def trace_from(lane_slots, num_params=2):
    lane_slots = np.asarray(lane_slots)
    return KernelTrace(
        lane_slots=lane_slots, num_params=num_params,
        n_slots=int(lane_slots.max(initial=0)) + 1,
    )


class TestLocality:
    def test_fully_coalesced_trace(self):
        assert intra_warp_locality(coalesced_trace(n_batches=200)) == 1.0

    def test_scattered_trace_near_zero(self):
        assert intra_warp_locality(
            scattered_trace(n_batches=200, n_slots=8192)
        ) < 0.01

    def test_mixed_trace_in_between(self):
        value = intra_warp_locality(
            mixed_locality_trace(
                n_batches=400, groups_per_warp=2, mean_active=4, seed=1
            )
        )
        assert 0.0 < value < 0.6

    def test_empty_batches_excluded(self):
        lanes = np.full((4, WARP_SIZE), INACTIVE)
        lanes[0, :] = 3  # one coalesced batch; three fully inactive
        assert intra_warp_locality(trace_from(lanes)) == 1.0

    def test_all_empty_trace_is_zero(self):
        lanes = np.full((4, WARP_SIZE), INACTIVE)
        assert intra_warp_locality(trace_from(lanes)) == 0.0


class TestHistogram:
    def test_bins_cover_0_to_32(self):
        histogram = active_thread_histogram(coalesced_trace(n_batches=100))
        assert histogram.shape == (WARP_SIZE + 1,)
        assert histogram.sum() == 100

    def test_known_counts(self):
        lanes = np.full((3, WARP_SIZE), INACTIVE)
        lanes[0, :5] = 0
        lanes[1, :5] = 0
        lanes[2, :] = 0
        histogram = active_thread_histogram(trace_from(lanes))
        assert histogram[5] == 2
        assert histogram[32] == 1
        assert histogram.sum() == 3


class TestProfile:
    def test_profile_fields(self):
        trace = coalesced_trace(n_batches=50, num_params=4, seed=3)
        profile = profile_trace(trace)
        assert profile.n_batches == 50
        assert profile.num_params == 4
        assert profile.locality == 1.0
        assert 0 < profile.mean_active <= WARP_SIZE
        assert profile.lane_ops == trace.total_lane_ops

    def test_profile_str_mentions_key_stats(self):
        text = str(profile_trace(coalesced_trace(n_batches=10)))
        assert "locality" in text
        assert "batches" in text

    def test_empty_trace_profile(self):
        trace = KernelTrace(
            np.zeros((0, WARP_SIZE), dtype=int), num_params=1, n_slots=1
        )
        profile = profile_trace(trace)
        assert profile.mean_active == 0.0
        assert profile.locality == 0.0
