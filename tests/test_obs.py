"""Unit contracts of :mod:`repro.obs`: metrics registry and span model.

The service-level acceptance proofs (tracing-on bit-identity, stitched
timelines, Prometheus endpoint families) live in ``test_service.py``;
this file pins the primitives they build on:

* counter/gauge/histogram semantics, label identity, and registration
  idempotence;
* Prometheus text exposition 0.0.4 shape, rendered deterministically;
* span records riding the obslog with parent links intact, the
  ``REPRO_TRACE`` session root, and the in-band context codec.
"""

from __future__ import annotations

import pytest

from repro import obslog
from repro.obs import metrics as obsmetrics
from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, SpanContext


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #


def test_counter_and_gauge_semantics():
    reg = MetricsRegistry()
    requests = reg.counter("repro_requests_total", "Requests seen.")
    assert requests.value() == 0.0
    requests.inc()
    requests.inc(2.5)
    assert requests.value() == 3.5
    with pytest.raises(ValueError):
        requests.inc(-1)

    depth = reg.gauge("repro_queue_size", "Queued entries.")
    depth.set(4)
    depth.dec()
    depth.inc(0.5)
    assert depth.value() == 3.5


def test_labelled_series_are_distinct_and_order_insensitive():
    reg = MetricsRegistry()
    outcomes = reg.counter("repro_attempts_total", "Attempts.",
                           labelnames=("outcome", "cell"))
    outcomes.inc(outcome="ok", cell="a")
    outcomes.inc(cell="a", outcome="ok")  # same series, any kwarg order
    outcomes.inc(outcome="error", cell="a")
    assert outcomes.value(outcome="ok", cell="a") == 2.0
    assert outcomes.value(outcome="error", cell="a") == 1.0
    with pytest.raises(ValueError):
        outcomes.inc(outcome="ok")  # missing a declared label


def test_registration_is_idempotent_but_conflicts_raise():
    reg = MetricsRegistry()
    first = reg.counter("repro_x_total", "X.")
    again = reg.counter("repro_x_total", "X.")
    assert first is again
    with pytest.raises(ValueError):
        reg.gauge("repro_x_total", "X as a gauge.")
    with pytest.raises(ValueError):
        reg.counter("repro_x_total", "X.", labelnames=("cell",))


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    lat = reg.histogram("repro_latency_seconds", "Latency.",
                        buckets=(0.1, 1.0, 10.0))
    for sample in (0.05, 0.5, 0.5, 5.0, 50.0):
        lat.observe(sample)
    counts, total = lat.counts()
    # Cumulative per Prometheus semantics: le=0.1, le=1.0, le=10.0, +Inf.
    assert counts == [1, 3, 4, 5]
    assert total == pytest.approx(56.05)


def test_prometheus_exposition_shape():
    reg = MetricsRegistry()
    reg.counter("repro_service_coalesced_total", "Coalesced requests.").inc(3)
    reg.gauge("repro_service_breaker_state",
              "Breaker state (0 closed / 1 half-open / 2 open).").set(2)
    shed = reg.counter("repro_service_shed_total", "Shed requests.")
    shed.inc()
    hist = reg.histogram("repro_service_queue_wait_seconds", "Queue wait.",
                         buckets=(0.5, 1.0))
    hist.observe(0.25)
    text = reg.render_prometheus()
    lines = text.splitlines()
    assert text.endswith("\n")
    assert "# TYPE repro_service_coalesced_total counter" in lines
    assert "repro_service_coalesced_total 3" in lines
    assert "repro_service_breaker_state 2" in lines
    assert 'repro_service_queue_wait_seconds_bucket{le="0.5"} 1' in lines
    assert 'repro_service_queue_wait_seconds_bucket{le="+Inf"} 1' in lines
    assert "repro_service_queue_wait_seconds_count 1" in lines
    # Every sample line belongs to a metric that was HELP/TYPE-declared
    # above it -- the 0.0.4 text-format contract a scraper relies on.
    declared = set()
    for line in lines:
        if line.startswith("# TYPE"):
            declared.add(line.split()[2])
        elif line and not line.startswith("#"):
            name = line.split("{")[0].split()[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    base = name[: -len(suffix)]
            assert name in declared or base in declared, line
    # Deterministic: same registry renders byte-identical text.
    assert reg.render_prometheus() == text


def test_snapshot_roundtrips_to_plain_json_types():
    import json

    reg = MetricsRegistry()
    reg.counter("repro_a_total", "A.", labelnames=("k",)).inc(k="v")
    reg.histogram("repro_b_seconds", "B.", buckets=(1.0,)).observe(0.5)
    snapshot = reg.snapshot()
    assert json.loads(json.dumps(snapshot)) == snapshot
    assert snapshot["repro_a_total"]["type"] == "counter"
    assert snapshot["repro_b_seconds"]["series"][0]["count"] == 1


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #


@pytest.fixture
def span_sink(tmp_path, monkeypatch):
    path = tmp_path / "spans.jsonl"
    monkeypatch.setenv(obslog.OBSLOG_ENV, str(path))
    return path


def spans_in(path):
    return [e for e in obslog.read_events(path) if e["event"] == "span"]


def test_span_record_carries_identity_and_timing(span_sink):
    root = Span("client.request", role="client")
    child = Span("svc.queue_wait", parent=root.context, role="broker")
    child.end(outcome="ok")
    root.end(status="ok")

    records = spans_in(span_sink)
    assert [r["name"] for r in records] == ["svc.queue_wait",
                                            "client.request"]
    child_rec, root_rec = records
    assert child_rec["trace_id"] == root_rec["trace_id"]
    assert child_rec["parent_id"] == root_rec["span_id"]
    assert root_rec["parent_id"] is None
    for record in records:
        assert record["dur_ms"] >= 0.0
        assert isinstance(record["start_unix"], float)
    assert child_rec["outcome"] == "ok"
    assert root_rec["role"] == "client"


def test_span_end_is_idempotent(span_sink):
    span = Span("once")
    span.end()
    span.end()
    assert len(spans_in(span_sink)) == 1


def test_span_context_manager_records_errors(span_sink):
    with pytest.raises(RuntimeError):
        with tracing.span("svc.attempt", role="broker"):
            raise RuntimeError("boom")
    record = spans_in(span_sink)[0]
    assert record["status"] == "error"
    assert record["error"] == "RuntimeError"


def test_context_codec_roundtrip():
    ctx = SpanContext(tracing.new_trace_id(), tracing.new_span_id())
    assert SpanContext.decode(ctx.encode()) == ctx
    assert SpanContext.from_dict(ctx.to_dict()) == ctx
    assert SpanContext.decode("garbage") is None
    assert SpanContext.decode(None) is None


def test_session_root_rides_the_environment(monkeypatch):
    monkeypatch.delenv(tracing.TRACE_ENV, raising=False)
    assert tracing.carried() is None
    ctx = tracing.arm_session()
    try:
        assert tracing.carried() == ctx
        # Arming twice keeps the existing root (idempotent).
        assert tracing.arm_session() == ctx
    finally:
        tracing.disarm_session()
    assert tracing.carried() is None


def test_spans_join_the_carried_session_root(monkeypatch, span_sink):
    monkeypatch.delenv(tracing.TRACE_ENV, raising=False)
    root = tracing.arm_session()
    try:
        with tracing.span("cell.execute", parent=tracing.carried(),
                          role="worker"):
            pass
    finally:
        tracing.disarm_session()
    record = spans_in(span_sink)[0]
    assert record["trace_id"] == root.trace_id
    assert record["parent_id"] == root.span_id


def test_default_registry_is_process_global():
    reg = obsmetrics.registry()
    assert obsmetrics.registry() is reg
