"""Unit-test isolation for the experiment cache layers.

Every test gets a private, initially empty on-disk cache under its tmp
dir, and starts from empty in-memory memoization.  Tests that need warm
or shared cache state build it themselves; nothing can leak between
tests or into the developer's real ``~/.cache/repro-arc``.
"""

from __future__ import annotations

import pytest

from repro.experiments import diskcache
from repro.experiments.runner import clear_caches


@pytest.fixture(autouse=True)
def isolated_experiment_caches(tmp_path):
    clear_caches()
    with diskcache.isolated(tmp_path / "repro-cache"):
        yield
    clear_caches()
