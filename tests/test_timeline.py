"""Timeline exporters: Perfetto schema, persistence, and summaries.

Covers the ISSUE acceptance criteria for :mod:`repro.profiling.timeline`:
the Chrome trace-event export is schema-valid (globally sorted
timestamps, stack-matched B/E pairs per track, per-counter monotone
time, one span track per active sub-core, counter tracks for LSU / ROP /
interconnect), timelines round-trip through both ``.json`` and ``.npz``,
and the summary reproduces the engine's own saturation and utilization
accounting.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import make_strategy
from repro.gpu import SIMULATED_GPUS, Telemetry, simulate_kernel
from repro.profiling import (
    capture_timeline,
    load_timeline,
    save_timeline,
    summarize_timeline,
    to_chrome_trace,
)
from repro.trace import coalesced_trace, scattered_trace


def saturating_cell():
    """A cell known to fill the LSU queue (baseline atomics, scattered
    addresses, the smaller GPU)."""
    trace = scattered_trace(n_batches=120, n_slots=512, num_params=1,
                            seed=13)
    return trace, SIMULATED_GPUS["3060-Sim"], "baseline"


@pytest.fixture(scope="module")
def saturated():
    """One instrumented simulation shared by the summary tests."""
    trace, gpu, strategy = saturating_cell()
    telemetry = Telemetry()
    result = simulate_kernel(trace, gpu, make_strategy(strategy),
                             telemetry=telemetry)
    return trace, gpu, telemetry, result


# --------------------------------------------------------------------- #
# Chrome trace-event schema
# --------------------------------------------------------------------- #

def check_chrome_schema(doc: dict) -> dict:
    """Structural validity of a trace-event document; returns the events
    grouped for further assertions."""
    events = doc["traceEvents"]
    timed = [ev for ev in events if ev["ph"] != "M"]

    # Globally sorted timestamps.
    stamps = [ev["ts"] for ev in timed]
    assert stamps == sorted(stamps)

    # Spans: stack-matched B/E pairs per (pid, tid), same name on pop.
    stacks: dict = {}
    for ev in timed:
        if ev["ph"] == "B":
            stacks.setdefault((ev["pid"], ev["tid"]), []).append(ev["name"])
        elif ev["ph"] == "E":
            stack = stacks.get((ev["pid"], ev["tid"]))
            assert stack, f"E without B on track {ev}"
            assert stack.pop() == ev["name"]
    assert all(not stack for stack in stacks.values()), "unclosed spans"

    # Counters: per-track time monotone, values non-negative.  (Cycle
    # stamps are unique per track, but the cycles->us conversion can
    # collapse near-equal floats, so ties are allowed.)
    counter_ts: dict = {}
    for ev in timed:
        if ev["ph"] != "C":
            continue
        track = (ev["pid"], ev["name"])
        previous = counter_ts.get(track)
        assert previous is None or ev["ts"] >= previous, track
        counter_ts[track] = ev["ts"]
        (value,) = ev["args"].values()
        assert value >= 0
    return {"timed": timed, "counters": set(counter_ts)}


def test_chrome_trace_schema_and_tracks(saturated):
    _trace, _gpu, telemetry, _result = saturated
    doc = to_chrome_trace(telemetry)
    groups = check_chrome_schema(doc)

    # One span track per active sub-core, named in the metadata.
    active = {span[0] for span in telemetry.spans}
    assert active, "saturating cell must keep sub-cores busy"
    span_tids = {ev["tid"] for ev in groups["timed"] if ev["ph"] == "B"}
    assert span_tids == active
    thread_names = {
        ev["args"]["name"] for ev in doc["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    assert {f"sub-core {subcore}" for subcore in active} <= thread_names

    # Counter tracks for the LSU queues, ROP partitions and interconnect.
    counter_names = {name for _pid, name in groups["counters"]}
    assert any(name.startswith("lsu_queue[sm") for name in counter_names)
    assert any(name.startswith("rop_busy[p") for name in counter_names)
    assert "interconnect_busy" in counter_names

    # Provenance rides along for `repro timeline` and humans.
    assert doc["otherData"]["strategy"] == "baseline"
    assert doc["otherData"]["gpu"] == "3060-Sim"


def test_chrome_trace_reduction_unit_counter():
    # ARC-HW only engages the per-sub-core FPUs when warp-level
    # reduction leaves multiple values, i.e. on scattered addresses.
    trace = scattered_trace(n_batches=48, n_slots=256, num_params=2, seed=4)
    telemetry = capture_timeline(
        trace, SIMULATED_GPUS["4090-Sim"], make_strategy("ARC-HW")
    )
    doc = to_chrome_trace(telemetry)
    groups = check_chrome_schema(doc)
    assert any(name == "active_reduction_units"
               for _pid, name in groups["counters"])


def test_chrome_trace_serializes_to_json(saturated, tmp_path):
    _trace, _gpu, telemetry, _result = saturated
    path = tmp_path / "trace.json"
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(telemetry), handle)
    assert json.loads(path.read_text())["traceEvents"]


# --------------------------------------------------------------------- #
# Persistence round-trips
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("suffix", ["json", "npz"])
def test_timeline_round_trips(saturated, tmp_path, suffix):
    _trace, _gpu, telemetry, _result = saturated
    path = tmp_path / f"timeline.{suffix}"
    save_timeline(telemetry, path)
    rebuilt = load_timeline(path)
    assert rebuilt.as_dict() == telemetry.as_dict()


# --------------------------------------------------------------------- #
# Summaries
# --------------------------------------------------------------------- #

def test_summary_reports_lsu_saturation(saturated):
    """`lsu_full_events > 0` must coincide with the timeline showing the
    queue at its configured depth -- the acceptance invariant for
    `repro timeline`."""
    _trace, gpu, telemetry, result = saturated
    summary = summarize_timeline(telemetry)
    assert result.lsu_full_events > 0
    assert summary.lsu_full_events == result.lsu_full_events
    assert summary.peak_lsu_occupancy == gpu.lsu_queue_depth
    assert summary.lsu_saturated
    assert summary.saturated_frac["lsu"] > 0.0
    assert summary.total_cycles == result.total_cycles


def test_summary_without_saturation():
    """ARC-HW on a coalesced kernel never fills the queue, and the
    summary says so."""
    trace = coalesced_trace(n_batches=64, n_slots=64, num_params=4, seed=3)
    gpu = SIMULATED_GPUS["4090-Sim"]
    telemetry = Telemetry()
    result = simulate_kernel(trace, gpu, make_strategy("ARC-HW"),
                             telemetry=telemetry)
    summary = summarize_timeline(telemetry)
    assert result.lsu_full_events == 0
    assert summary.peak_lsu_occupancy < gpu.lsu_queue_depth
    assert not summary.lsu_saturated
    assert summary.saturated_frac["lsu"] == 0.0


def test_summary_interconnect_matches_result(saturated):
    """The timeline's integrated link busy time equals the closed-form
    `SimResult.interconnect_utilization` (the engine serializes the
    link, so the two are the same number computed two ways)."""
    _trace, gpu, telemetry, result = saturated
    summary = summarize_timeline(telemetry)
    assert summary.interconnect_utilization == pytest.approx(
        result.interconnect_utilization(gpu), rel=1e-9
    )
    assert summary.saturated_frac["interconnect"] == pytest.approx(
        summary.interconnect_utilization
    )


def test_summary_hot_slots(saturated):
    _trace, _gpu, telemetry, _result = saturated
    summary = summarize_timeline(telemetry, top_k=3)
    assert 1 <= len(summary.hot_slots) <= 3
    busy = [slot_busy for _slot, slot_busy, _ops in summary.hot_slots]
    assert busy == sorted(busy, reverse=True)
    assert all(ops >= 1 for _slot, _busy, ops in summary.hot_slots)

    payload = summary.to_dict()
    assert payload["lsu_saturated"] is True
    assert json.loads(json.dumps(payload)) == payload
