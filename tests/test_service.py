"""Chaos suite for the simulation service (broker/supervisor/daemon).

The service's contract extends the execution layer's: admission
decisions (coalesce, shed, degrade) are *deterministic* under ordered
submission, and no recovery or degradation path may ever change what a
request computes.  The acceptance proofs:

* **coalescing fan-out** -- N duplicate in-flight requests produce
  exactly one execution whose result fans out to every waiter,
  bit-identical to a clean serial run;
* **typed load-shedding** -- a saturated (or fault-saturated) queue
  rejects with :class:`RequestShed`, visible in the obslog, and the
  request is admittable again afterwards;
* **graceful degradation** -- a saturated queue serves a stale
  logical-key match with a warning instead of shedding, and an open
  circuit breaker degrades execution to in-process serial;
* **breaker determinism** -- the closed -> open -> half-open -> closed
  cycle is walked deterministically by a fake clock in-unit and by
  crash faults end to end;
* **journal recovery** -- a pool crash re-serves journaled completions
  from the disk cache without re-executing;
* **the load proof** -- >= 1000 requests (>97% duplicates) complete
  bit-identical to serial while planned faults crash workers, hang a
  cell past its timeout and saturate the queue;
* **iosan cross-check** -- a REPRO_SANITIZE=1 service run performs no
  shared-file write the static ARC009-012 model does not explain.

Pool-driving tests spawn real worker processes; paused-broker admission
tests and the state-machine units stay in-process and cheap.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.experiments import diskcache, faults, runner
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.manifest import RunManifest
from repro.experiments.resilience import RetryPolicy
from repro.experiments.runner import clear_caches, run_matrix, simulate_cell
from repro.gpu import SIMULATED_GPUS
from repro.obslog import read_events
from repro.service import (
    Broker,
    CircuitBreaker,
    DeadlineExceeded,
    RequestShed,
    SimRequest,
)
from repro.trace import coalesced_trace, scattered_trace

GPUS = ["3060-Sim"]


class FakeWorkload:
    """Deterministic synthetic stand-in, sized for service-test speed.

    Each fake needs its own seed: request fingerprints are *content*
    addresses, so two workloads with byte-identical traces are the same
    simulation to the broker (its memo would answer the second one).
    """

    def __init__(self, key, seed, bfly=True):
        self.key = key
        self._seed = seed
        self._bfly = bfly

    def capture_trace(self):
        factory = coalesced_trace if self._bfly else scattered_trace
        return factory(n_batches=150, num_params=4, seed=self._seed,
                       name=self.key)


FAKES = {
    "S1": FakeWorkload("S1", seed=13),
    "S2": FakeWorkload("S2", seed=14, bfly=False),
    "S3": FakeWorkload("S3", seed=15),
    "S4": FakeWorkload("S4", seed=16, bfly=False),
}


@pytest.fixture
def fake_registry(monkeypatch):
    monkeypatch.setattr(runner, "load_workload", lambda key: FAKES[key])
    return FAKES


@pytest.fixture(autouse=True)
def clean_fault_plan():
    faults.configure(None)
    yield
    faults.configure(None)


@pytest.fixture
def obslog_sink(tmp_path, monkeypatch):
    path = tmp_path / "svc-obslog.jsonl"
    monkeypatch.setenv("REPRO_OBSLOG", str(path))
    return path


def fast_policy(timeout=None, attempts=3):
    return RetryPolicy(
        max_attempts=attempts, timeout=timeout,
        backoff_base=0.01, backoff_max=0.05,
    )


def serial_truth(tmp_path, workloads, strategies):
    """Clean uncached serial results; leaves a fresh enabled cache."""
    diskcache.configure(enabled=False)
    serial = run_matrix(workloads, strategies, GPUS)
    clear_caches()
    diskcache.configure(root=tmp_path / "svc-cache", enabled=True)
    return {
        (c.workload, c.gpu, c.strategy): c.result.to_dict() for c in serial
    }


def events_named(path, name):
    return [e for e in read_events(path) if e["event"] == name]


async def ordered_burst(broker, requests):
    """Submit *requests* in order against a paused broker, then run.

    One scheduler pass admits every request (submission is synchronous
    to its first await) before ``resume`` lets dispatchers at the queue,
    so coalesce/shed arithmetic is exact.
    """
    await broker.start()
    try:
        tasks = [
            asyncio.ensure_future(broker.submit(request))
            for request in requests
        ]
        await asyncio.sleep(0)
        broker.resume()
        return await asyncio.gather(*tasks, return_exceptions=True)
    finally:
        await broker.stop()


# --------------------------------------------------------------------- #
# Coalescing and memoization
# --------------------------------------------------------------------- #


def test_coalescing_fans_out_single_execution(fake_registry, tmp_path,
                                              obslog_sink):
    """Six duplicate requests: one admission, one pool execution, six
    bit-identical responses."""
    truth = serial_truth(tmp_path, ["S1"], ["baseline"])
    broker = Broker(jobs=2, paused=True, policy=fast_policy(),
                    session="coalesce")
    requests = [
        SimRequest(workload="S1", gpu="3060-Sim", strategy="baseline")
        for _ in range(6)
    ]
    responses = asyncio.run(ordered_burst(broker, requests))

    expected = truth[("S1", "3060-Sim", "baseline")]
    assert [r.result.to_dict() for r in responses] == [expected] * 6
    assert responses[0].coalesced is False
    assert all(r.coalesced for r in responses[1:])
    assert broker.stats.admitted == 1
    assert broker.stats.coalesced == 5
    assert broker.stats.executions == 1
    assert broker.executions_for(responses[0].key) == 1
    coalesce_events = events_named(obslog_sink, "svc.coalesce")
    assert len(coalesce_events) == 5
    [finish] = events_named(obslog_sink, "svc.finish")
    assert finish["waiters"] == 6
    assert finish["source"] == "worker"


def test_completed_request_answers_from_memo(fake_registry, tmp_path):
    serial_truth(tmp_path, ["S1"], ["baseline"])
    request = SimRequest(workload="S1", gpu="3060-Sim",
                         strategy="baseline")

    async def scenario(broker):
        await broker.start()
        try:
            first = await broker.submit(request)
            second = await broker.submit(request)
            return first, second
        finally:
            await broker.stop()

    broker = Broker(jobs=1, policy=fast_policy(), session="memo")
    first, second = asyncio.run(scenario(broker))
    assert first.source == "worker"
    assert second.source == "memo"
    assert second.result.to_dict() == first.result.to_dict()
    assert broker.stats.memo_hits == 1
    assert broker.stats.executions == 1


# --------------------------------------------------------------------- #
# Admission control: shedding, stale-serve, deadlines
# --------------------------------------------------------------------- #


def test_queue_full_fault_sheds_typed_then_readmits(fake_registry,
                                                    tmp_path, obslog_sink):
    """A planned queue-full saturation sheds with the typed rejection;
    the same cell is admittable on its next arrival."""
    truth = serial_truth(tmp_path, ["S1"], ["baseline"])
    faults.configure(FaultPlan((
        FaultSpec(cell="S1|3060-Sim|baseline", kind="queue-full", times=1),
    )))
    request = SimRequest(workload="S1", gpu="3060-Sim",
                         strategy="baseline")

    async def scenario(broker):
        await broker.start()
        try:
            with pytest.raises(RequestShed) as shed:
                await broker.submit(request)
            assert shed.value.kind == "shed"
            return await broker.submit(request)
        finally:
            await broker.stop()

    broker = Broker(jobs=1, policy=fast_policy(), session="shed")
    response = asyncio.run(scenario(broker))
    assert response.result.to_dict() == truth[("S1", "3060-Sim",
                                               "baseline")]
    assert broker.stats.shed == 1
    assert broker.stats.admitted == 1
    [shed_event] = events_named(obslog_sink, "svc.shed")
    assert shed_event["cell"] == "S1|3060-Sim|baseline"
    # Post-mortem fields: configured capacity vs. live occupancy (the
    # fault saturates a genuinely empty queue) and the request's
    # remaining deadline budget (none was set here).
    assert shed_event["queue_depth"] == broker.queue_depth
    assert shed_event["queue_size"] == 0
    assert shed_event["deadline_remaining"] is None


def test_shed_event_records_remaining_deadline_budget(fake_registry,
                                                      tmp_path,
                                                      obslog_sink):
    """A deadline-carrying request shed at admission records how much
    of its budget was still unspent -- the field that separates 'shed
    while fresh' from 'shed after queue-time burned the budget'."""
    serial_truth(tmp_path, ["S1"], ["baseline"])
    faults.configure(FaultPlan((
        FaultSpec(cell="S1|3060-Sim|baseline", kind="queue-full", times=1),
    )))
    request = SimRequest(workload="S1", gpu="3060-Sim",
                         strategy="baseline", deadline=30.0)

    async def scenario(broker):
        await broker.start()
        try:
            with pytest.raises(RequestShed):
                await broker.submit(request)
        finally:
            await broker.stop()

    broker = Broker(jobs=1, policy=fast_policy(), session="shed-budget")
    asyncio.run(scenario(broker))
    [shed_event] = events_named(obslog_sink, "svc.shed")
    assert 0.0 < shed_event["deadline_remaining"] <= 30.0
    assert shed_event["queue_depth"] == broker.queue_depth


def test_real_queue_saturation_sheds(fake_registry, tmp_path):
    """depth-1 queue, two distinct admissions while paused: the second
    is shed by genuine occupancy, not a fault."""
    serial_truth(tmp_path, ["S1", "S2"], ["baseline"])
    broker = Broker(jobs=1, queue_depth=1, paused=True,
                    policy=fast_policy(), session="saturate")
    responses = asyncio.run(ordered_burst(broker, [
        SimRequest(workload="S1", gpu="3060-Sim", strategy="baseline"),
        SimRequest(workload="S2", gpu="3060-Sim", strategy="baseline"),
    ]))
    assert responses[0].source == "worker"
    assert isinstance(responses[1], RequestShed)
    assert broker.stats.shed == 1


def test_saturated_queue_serves_stale_with_warning(fake_registry, tmp_path,
                                                   monkeypatch,
                                                   obslog_sink):
    """After an engine change, a saturated queue degrades to the stale
    logical-key match instead of shedding -- flagged, never silent."""
    serial_truth(tmp_path, ["S1"], ["baseline"])
    request = SimRequest(workload="S1", gpu="3060-Sim",
                         strategy="baseline")

    async def scenario(broker):
        await broker.start()
        try:
            fresh = await broker.submit(request)
            # The engine "changes": result keys diverge, the logical
            # key (engine-agnostic) still matches the completed run.
            monkeypatch.setattr(
                diskcache, "engine_fingerprint", lambda: "engine-v-next"
            )
            faults.configure(FaultPlan((
                FaultSpec(cell="S1|3060-Sim|baseline", kind="queue-full",
                          times=10),
            )))
            stale = await broker.submit(request)
            return fresh, stale
        finally:
            await broker.stop()

    broker = Broker(jobs=1, policy=fast_policy(), session="stale")
    fresh, stale = asyncio.run(scenario(broker))
    assert stale.source == "stale"
    assert stale.stale is True
    assert stale.warning and "stale" in stale.warning
    assert stale.result.to_dict() == fresh.result.to_dict()
    assert broker.stats.degraded == 1
    assert broker.stats.shed == 0
    [degrade] = events_named(obslog_sink, "svc.degrade")
    assert degrade["reason"] == "queue-full"


def test_degradation_can_be_disabled(fake_registry, tmp_path, monkeypatch):
    """--no-degrade semantics: with degradation off the same saturation
    sheds even though a stale result exists."""
    serial_truth(tmp_path, ["S1"], ["baseline"])
    request = SimRequest(workload="S1", gpu="3060-Sim",
                         strategy="baseline")

    async def scenario(broker):
        await broker.start()
        try:
            await broker.submit(request)
            monkeypatch.setattr(
                diskcache, "engine_fingerprint", lambda: "engine-v-next"
            )
            faults.configure(FaultPlan((
                FaultSpec(cell="S1|3060-Sim|baseline", kind="queue-full",
                          times=10),
            )))
            with pytest.raises(RequestShed):
                await broker.submit(request)
        finally:
            await broker.stop()

    broker = Broker(jobs=1, policy=fast_policy(), degrade=False,
                    session="nodegrade")
    asyncio.run(scenario(broker))
    assert broker.stats.shed == 1
    assert broker.stats.degraded == 0


def test_deadline_expires_typed_while_queued(fake_registry, tmp_path,
                                             obslog_sink):
    """A paused broker never dispatches: the deadline expires in-queue
    and the waiter gets the typed rejection."""
    serial_truth(tmp_path, ["S1"], ["baseline"])
    request = SimRequest(workload="S1", gpu="3060-Sim",
                         strategy="baseline", deadline=0.15)

    async def scenario(broker):
        await broker.start()
        try:
            with pytest.raises(DeadlineExceeded) as excinfo:
                await broker.submit(request)
            assert excinfo.value.kind == "deadline"
        finally:
            await broker.stop(drain=False)

    broker = Broker(jobs=1, paused=True, policy=fast_policy(),
                    session="deadline")
    asyncio.run(scenario(broker))
    assert broker.stats.deadline_misses >= 1
    assert events_named(obslog_sink, "svc.deadline")


def test_sim_request_rejects_nonpositive_deadline():
    with pytest.raises(ValueError):
        SimRequest(workload="S1", gpu="3060-Sim", strategy="baseline",
                   deadline=0.0)


# --------------------------------------------------------------------- #
# Circuit breaker and pool supervision
# --------------------------------------------------------------------- #


def test_circuit_breaker_state_machine():
    """closed -> open at the threshold, half-open when the backoff is
    spent, doubled backoff on a failed probe, full reset on success --
    all on a fake clock."""
    now = [0.0]
    breaker = CircuitBreaker(threshold=2, backoff_base=1.0,
                             backoff_factor=2.0, backoff_max=8.0,
                             clock=lambda: now[0])
    assert breaker.state == "closed"
    assert breaker.record_failure() is False
    assert breaker.state == "closed"
    assert breaker.record_failure() is True
    assert breaker.state == "open"
    assert breaker.open_backoff == 1.0
    now[0] = 0.99
    assert breaker.state == "open"
    now[0] = 1.0
    assert breaker.state == "half-open"
    # A failed half-open probe renews the trip with a doubled backoff.
    assert breaker.record_failure() is True
    assert breaker.open_backoff == 2.0
    assert breaker.state == "open"
    now[0] = 3.0
    assert breaker.state == "half-open"
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.trips_total == 2
    # Healing resets the exponential series, not just the state.
    breaker.record_failure()
    assert breaker.record_failure() is True
    assert breaker.open_backoff == 1.0
    # And the backoff is capped.
    for _ in range(10):
        breaker.record_failure()
    assert breaker.open_backoff == 8.0


def test_retry_policy_deadline_clamping():
    policy = RetryPolicy(max_attempts=2, timeout=10.0)
    assert policy.clamped(None) is policy
    assert policy.clamped(3.0).timeout == 3.0
    # A tighter own timeout wins over a looser remaining budget.
    assert policy.clamped(60.0) is policy
    # A spent budget still leaves a positive (minimal) timeout.
    assert RetryPolicy(timeout=None).clamped(-1.0).timeout == 1e-3


def test_breaker_trips_half_opens_and_heals(fake_registry, tmp_path,
                                            obslog_sink):
    """Crash faults trip the breaker deterministically; requests degrade
    in-process while it is open; the half-open probe heals it and
    execution returns to the pool.  Every response stays correct."""
    truth = serial_truth(tmp_path, ["S1", "S2", "S3"], ["baseline"])
    faults.configure(FaultPlan((
        FaultSpec(cell="S1|3060-Sim|baseline", kind="crash", times=3),
    )))

    async def scenario(broker):
        await broker.start()
        try:
            crashed = await broker.submit(SimRequest(
                workload="S1", gpu="3060-Sim", strategy="baseline"
            ))
            opened = broker.snapshot()["supervisor"]["breaker"]
            while_open = await broker.submit(SimRequest(
                workload="S2", gpu="3060-Sim", strategy="baseline"
            ))
            await asyncio.sleep(2.2)  # let the open backoff expire
            healed = await broker.submit(SimRequest(
                workload="S3", gpu="3060-Sim", strategy="baseline"
            ))
            closed = broker.snapshot()["supervisor"]["breaker"]
            return crashed, opened, while_open, healed, closed
        finally:
            await broker.stop()

    broker = Broker(
        jobs=1, concurrency=1, policy=fast_policy(attempts=2),
        breaker=CircuitBreaker(threshold=2, backoff_base=2.0),
        session="breaker",
    )
    crashed, opened, while_open, healed, closed = asyncio.run(
        scenario(broker)
    )

    # Both worker attempts crashed -> trip -> in-process degradation.
    assert crashed.source == "inproc"
    assert opened["state"] in ("open", "half-open")
    assert opened["trips_total"] == 1
    assert while_open.source == "inproc"
    # The probe healed the breaker; execution is back on the pool.
    assert healed.source == "worker"
    assert closed["state"] == "closed"

    for response, workload in ((crashed, "S1"), (while_open, "S2"),
                               (healed, "S3")):
        assert response.result.to_dict() == truth[
            (workload, "3060-Sim", "baseline")
        ], f"degraded path changed the result of {workload}"

    states = [e["state"] for e in events_named(obslog_sink, "svc.breaker")]
    assert "open" in states
    opened_at = states.index("open")
    assert "half-open" in states[opened_at:]
    assert "closed" in states[states.index("half-open", opened_at):]
    degrade_reasons = {
        e["reason"] for e in events_named(obslog_sink, "svc.degrade")
    }
    assert "retries-exhausted" in degrade_reasons
    assert "breaker-open" in degrade_reasons


def test_crash_recovers_journaled_completion_without_reexecuting(
        fake_registry, tmp_path, obslog_sink):
    """A pre-seeded session journal + disk cache answer a crashed
    request from persisted state: zero successful pool executions."""
    serial_truth(tmp_path, ["S1"], ["baseline"])
    cache = diskcache.active_cache()
    config = SIMULATED_GPUS["3060-Sim"]
    trace = runner.get_trace("S1")
    strategy = runner.make_strategy("baseline")
    persisted = simulate_cell(trace, config, strategy)  # stores on disk
    key = diskcache.result_key(config, trace, strategy)
    journal = RunManifest.for_service(cache.root / "manifests", "recov")
    journal.record(key, {"workload": "S1", "gpu": "3060-Sim",
                         "strategy": "baseline"})
    faults.configure(FaultPlan((
        FaultSpec(cell="S1|3060-Sim|baseline", kind="crash", times=10),
    )))

    async def scenario(broker):
        await broker.start()
        try:
            return await broker.submit(SimRequest(
                workload="S1", gpu="3060-Sim", strategy="baseline"
            ))
        finally:
            await broker.stop()

    broker = Broker(jobs=1, policy=fast_policy(), session="recov")
    response = asyncio.run(scenario(broker))
    assert response.source == "journal"
    assert response.result.to_dict() == persisted.to_dict()
    assert broker.stats.journal_recoveries == 1
    assert broker.executions_for(key) == 1, \
        "recovery must happen on the first crash, not after retries"
    [recover] = events_named(obslog_sink, "svc.recover")
    assert recover["key"] == key


# --------------------------------------------------------------------- #
# The load proof
# --------------------------------------------------------------------- #


def test_service_load_is_bit_identical_under_chaos(fake_registry,
                                                   tmp_path, obslog_sink):
    """>= 1000 requests, > 97% duplicates, while a worker crash, a hang
    past the cell timeout and queue saturation (planned and real) all
    fire: every response is bit-identical to clean serial, each unique
    cell completes exactly once, and shed/degrade are observable."""
    workloads = ["S1", "S2", "S3", "S4"]
    strategies = ["baseline", "ARC-HW"]
    truth = serial_truth(tmp_path, workloads, strategies)
    cells = [(w, s) for w in workloads for s in strategies]
    requests = [
        SimRequest(workload=cells[i % len(cells)][0], gpu="3060-Sim",
                   strategy=cells[i % len(cells)][1])
        for i in range(1000)
    ]
    faults.configure(FaultPlan((
        FaultSpec(cell="S1|3060-Sim|baseline", kind="crash", times=2),
        FaultSpec(cell="S2|3060-Sim|baseline", kind="hang", times=1,
                  seconds=30.0),
        FaultSpec(cell="S3|3060-Sim|baseline", kind="queue-full", times=1),
    )))

    async def resilient_submit(broker, request):
        # Generous budget (~2 min): early arrivals can be shed for as
        # long as the depth-4 queue stays saturated while the faulted
        # pool respawns, which on a loaded machine takes many rounds.
        # The loop exits on first success, so healthy runs never pay it.
        for _ in range(2400):
            try:
                return await broker.submit(request)
            except RequestShed:
                await asyncio.sleep(0.05)
        raise AssertionError(f"{request.workload} shed forever")

    async def scenario(broker):
        await broker.start()
        try:
            tasks = [
                asyncio.ensure_future(resilient_submit(broker, request))
                for request in requests
            ]
            return await asyncio.gather(*tasks)
        finally:
            await broker.stop()

    broker = Broker(
        jobs=2, queue_depth=4, policy=fast_policy(timeout=3.0, attempts=2),
        session="load",
    )
    responses = asyncio.run(scenario(broker))

    assert len(responses) == 1000
    mismatched = [
        r.cell for r, request in zip(responses, requests)
        if r.result.to_dict() != truth[
            (request.workload, "3060-Sim", request.strategy)
        ]
    ]
    assert not mismatched, f"non-bit-identical responses: {mismatched[:5]}"

    stats = broker.stats
    # Duplicates collapse: every request beyond the eight unique cells
    # (plus shed retries) was answered by coalescing or the memo.
    assert stats.coalesced + stats.memo_hits >= 990
    assert stats.shed >= 1, "planned queue-full must shed at least once"
    assert stats.failures >= 2, "crash and hang faults must be seen"
    # Exactly one completed execution per unique cell fans out to all
    # of its duplicates -- the coalescing invariant under chaos.
    finishes = events_named(obslog_sink, "svc.finish")
    finished_cells = [e["cell"] for e in finishes]
    assert sorted(finished_cells) == sorted(
        f"{w}|3060-Sim|{s}" for w, s in cells
    ), "each unique cell must complete exactly once"
    assert events_named(obslog_sink, "svc.shed")
    # Admission accounting closes: every request was admitted, collapsed
    # onto an in-flight execution, memo-answered, or shed (and later
    # retried).  In-process degradation is an *execution* outcome of an
    # admitted entry, so it does not appear in this sum.
    assert stats.requests == (stats.admitted + stats.coalesced
                              + stats.memo_hits + stats.shed)
    assert stats.admitted == len(cells)


# --------------------------------------------------------------------- #
# Daemon: signal-driven drain over the unix socket
# --------------------------------------------------------------------- #


def test_sigterm_drains_inflight_coalesced_waiters(fake_registry,
                                                   tmp_path, obslog_sink):
    """SIGTERM mid-flight is a clean drain, not an amputation: five
    socket clients coalesced onto one paused cell each get a reply --
    a result or a typed error, never a hang or a dropped connection --
    and the daemon exits only after the broker has drained."""
    import json
    import os
    import signal

    from repro.service.daemon import ServiceDaemon

    truth = serial_truth(tmp_path, ["S1"], ["baseline"])
    socket_path = tmp_path / "svc-drain.sock"

    async def scenario():
        broker = Broker(jobs=1, paused=True, policy=fast_policy(),
                        session="drain")
        daemon = ServiceDaemon(broker, socket_path=socket_path)
        ready = asyncio.Event()
        run_task = asyncio.create_task(daemon.run(ready))
        await asyncio.wait_for(ready.wait(), timeout=10)
        conns = []
        for _ in range(5):
            reader, writer = await asyncio.open_unix_connection(
                str(socket_path)
            )
            writer.write(json.dumps(
                {"op": "simulate", "workload": "S1"}
            ).encode("utf-8") + b"\n")
            await writer.drain()
            conns.append((reader, writer))
        # All five must be in flight (one admission, four coalesced)
        # before the signal lands, so the drain has real waiters.
        for _ in range(500):
            if broker.stats.admitted + broker.stats.coalesced >= 5:
                break
            await asyncio.sleep(0.01)
        assert broker.stats.admitted == 1
        assert broker.stats.coalesced == 4
        # run() must have hooked SIGTERM; the default action would kill
        # the test process instead of draining the daemon.
        assert signal.getsignal(signal.SIGTERM) not in (
            signal.SIG_DFL, None
        )
        os.kill(os.getpid(), signal.SIGTERM)
        replies = []
        for reader, writer in conns:
            line = await asyncio.wait_for(reader.readline(), timeout=120)
            assert line, "waiter must get a reply, not a closed socket"
            replies.append(json.loads(line))
            writer.close()
        await asyncio.wait_for(run_task, timeout=60)
        return replies, broker

    replies, broker = asyncio.run(scenario())
    statuses = {reply["status"] for reply in replies}
    assert statuses <= {"ok", "shed", "deadline", "failed", "error"}, \
        statuses
    # The drain path resumes dispatch, so the coalesced cell actually
    # executes and every waiter sees the bit-identical serial result.
    assert statuses == {"ok"}
    expected = truth[("S1", "3060-Sim", "baseline")]
    assert all(reply["result"] == expected for reply in replies)
    assert sorted(reply["coalesced"] for reply in replies) \
        == [False, True, True, True, True]
    assert broker.stats.executions == 1
    assert not socket_path.exists(), "drained daemon removes its socket"
    assert events_named(obslog_sink, "svc.shutdown")


# --------------------------------------------------------------------- #
# Runtime cross-check of the static process-safety model
# --------------------------------------------------------------------- #


def test_service_iosan_writes_match_static_model(fake_registry, tmp_path,
                                                 monkeypatch, obslog_sink):
    """Under REPRO_SANITIZE=1 a service run performs no shared-file
    write the ARC009-012 static model does not explain: the daemon layer
    adds observability without adding writer sites."""
    from repro.experiments import iosan
    from tests.test_chaos import _static_write_model

    serial_truth(tmp_path, ["S1", "S2"], ["baseline"])
    log_path = tmp_path / "iosan.jsonl"
    monkeypatch.setenv(iosan.SANITIZE_ENV, "1")
    monkeypatch.setenv(iosan.IOSAN_LOG_ENV, str(log_path))
    requests = [
        SimRequest(workload=workload, gpu="3060-Sim", strategy="baseline")
        for workload in ("S1", "S2", "S1", "S2", "S1")
    ]
    broker = Broker(jobs=2, paused=True, policy=fast_policy(),
                    session="iosan")
    assert iosan.maybe_install(), "shim must arm when both env vars set"
    try:
        responses = asyncio.run(ordered_burst(broker, requests))
    finally:
        iosan.uninstall()
    assert not iosan.installed()
    assert all(not isinstance(r, BaseException) for r in responses)

    cache = diskcache.active_cache()
    events = iosan.read_log(log_path)
    assert events, "armed shim must record I/O"
    assert len({event["pid"] for event in events}) >= 2, \
        "spawned service workers must arm their own shim"
    observed = iosan.observed_protocols(
        events, cache.root, str(obslog_sink)
    )
    unexplained = observed - _static_write_model()
    assert not unexplained, (
        "service runtime writes the static process-safety model does "
        f"not explain: {sorted(unexplained)}"
    )
    # The three shared files a service run touches, each through its
    # modeled sound protocol.
    assert ("cache-results", iosan.PROTOCOL_ATOMIC_RENAME) in observed
    assert ("manifest", iosan.PROTOCOL_APPEND) in observed
    assert ("obslog", iosan.PROTOCOL_APPEND) in observed


# --------------------------------------------------------------------- #
# Observability: tracing, stitched timelines, metrics
# --------------------------------------------------------------------- #


def span_records(path, name=None):
    spans = [e for e in read_events(path) if e["event"] == "span"]
    if name is not None:
        spans = [s for s in spans if s["name"] == name]
    return spans


def test_tracing_armed_chaos_is_bit_identical(fake_registry, tmp_path,
                                              monkeypatch, obslog_sink):
    """Arming the full observability stack -- session root in the env,
    per-request client contexts, metrics registry -- changes *nothing*
    about what a fault-injected burst computes: every response stays
    bit-identical to the clean tracing-off serial baseline, and the
    coalescing fan-out shares exactly one execution span per cell."""
    from repro.obs import tracing
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import SpanContext, new_span_id, new_trace_id

    workloads = ["S1", "S2"]
    strategies = ["baseline", "ARC-HW"]
    # Baseline truth is computed with tracing OFF (no REPRO_TRACE, and
    # spans to an obslog are observation, not computation).
    truth = serial_truth(tmp_path, workloads, strategies)
    monkeypatch.setenv(
        tracing.TRACE_ENV,
        SpanContext(new_trace_id(), new_span_id()).encode(),
    )

    cells = [(w, s) for w in workloads for s in strategies]
    contexts = [SpanContext(new_trace_id(), new_span_id())
                for _ in range(200)]
    requests = [
        SimRequest(workload=cells[i % len(cells)][0], gpu="3060-Sim",
                   strategy=cells[i % len(cells)][1],
                   trace_id=contexts[i].trace_id,
                   parent_span=contexts[i].span_id)
        for i in range(200)
    ]
    faults.configure(FaultPlan((
        FaultSpec(cell="S1|3060-Sim|baseline", kind="crash", times=1),
        FaultSpec(cell="S2|3060-Sim|baseline", kind="queue-full", times=1),
    )))

    async def resilient_submit(broker, request):
        for _ in range(2400):
            try:
                return await broker.submit(request)
            except RequestShed:
                await asyncio.sleep(0.05)
        raise AssertionError(f"{request.workload} shed forever")

    async def scenario(broker):
        await broker.start()
        try:
            tasks = [
                asyncio.ensure_future(resilient_submit(broker, request))
                for request in requests
            ]
            return await asyncio.gather(*tasks)
        finally:
            await broker.stop()

    broker = Broker(jobs=2, queue_depth=4,
                    policy=fast_policy(timeout=3.0, attempts=2),
                    session="traced-load", metrics=MetricsRegistry())
    responses = asyncio.run(scenario(broker))

    mismatched = [
        r.cell for r, request in zip(responses, requests)
        if r.result.to_dict() != truth[
            (request.workload, "3060-Sim", request.strategy)
        ]
    ]
    assert not mismatched, f"tracing changed results: {mismatched[:5]}"

    # Every response joined its client's trace, not a broker-local one.
    for response, context in zip(responses, contexts):
        assert response.trace_id == context.trace_id
        assert response.span_id is not None
    # One *fulfilled* svc.request span per request, parented on the
    # client context.  Shed submissions emit their own outcome="shed"
    # spans and are resubmitted, so those add spans beyond the 200.
    request_spans = span_records(obslog_sink, "svc.request")
    fulfilled = [s for s in request_spans if s.get("outcome") != "shed"]
    assert len(fulfilled) == len(requests)
    assert {s["parent_id"] for s in fulfilled} \
        == {c.span_id for c in contexts}
    assert all(s.get("outcome") == "shed"
               for s in request_spans if s not in fulfilled)
    # Coalescing fan-out: all responses that point at an execution for
    # one cell point at the SAME svc.execute span.
    exec_ids_by_cell: "dict[str, set]" = {}
    for response in responses:
        if response.exec_span_id:
            exec_ids_by_cell.setdefault(response.cell, set()).add(
                response.exec_span_id
            )
    assert exec_ids_by_cell, "executed cells must report exec spans"
    for cell, ids in exec_ids_by_cell.items():
        assert len(ids) == 1, f"{cell} fanned out {len(ids)} exec spans"
    # ...and those ids are real emitted svc.execute spans whose fanout
    # attribute accounts for the waiters they served.
    exec_spans = {s["span_id"]: s
                  for s in span_records(obslog_sink, "svc.execute")}
    for ids in exec_ids_by_cell.values():
        (exec_id,) = ids
        assert exec_id in exec_spans
        assert exec_spans[exec_id]["fanout"] >= 1


def test_stitched_export_holds_full_request_path(fake_registry, tmp_path,
                                                 obslog_sink):
    """One traced request stitches into a single Perfetto timeline:
    client span, broker queue-wait, retry attempts (the fault forces a
    second one) and the engine's sim-time phase spans, all present in
    one traceEvents list with the service spans on their own process."""
    from repro.experiments.runner import make_strategy
    from repro.obs.tracing import Span
    from repro.profiling import capture_timeline, stitch_service_trace

    truth = serial_truth(tmp_path, ["S1"], ["baseline"])
    faults.configure(FaultPlan((
        FaultSpec(cell="S1|3060-Sim|baseline", kind="error", times=1),
    )))

    client_span = Span("client.request", role="client", workload="S1",
                       gpu="3060-Sim", strategy="baseline")
    request = SimRequest(workload="S1", gpu="3060-Sim",
                         strategy="baseline",
                         trace_id=client_span.context.trace_id,
                         parent_span=client_span.context.span_id)
    broker = Broker(jobs=1, policy=fast_policy(), session="stitch")

    async def scenario():
        await broker.start()
        try:
            return await broker.submit(request)
        finally:
            await broker.stop()

    response = asyncio.run(scenario())
    client_span.end(status="ok")
    assert response.result.to_dict() == truth[("S1", "3060-Sim",
                                               "baseline")]

    telemetry = capture_timeline(
        FAKES["S1"].capture_trace(), SIMULATED_GPUS["3060-Sim"],
        make_strategy("baseline"),
    )
    events = read_events(obslog_sink)
    stitched = stitch_service_trace(
        events, trace_id=client_span.context.trace_id,
        telemetry=telemetry,
    )
    service = [e for e in stitched["traceEvents"]
               if e.get("pid") == 100 and e.get("ph") == "X"]
    names = [e["name"] for e in service]
    assert "client.request" in names
    assert "svc.request" in names
    assert "svc.queue_wait" in names
    assert "svc.execute" in names
    # The planned error forces a retry: at least two attempt spans, one
    # errored and one ok.
    attempts = [e for e in service if e["name"] == "svc.attempt"]
    assert len(attempts) >= 2
    outcomes = {a["args"].get("outcome") for a in attempts}
    assert "ok" in outcomes
    # Engine phase spans share the timeline on their own pids.
    engine = [e for e in stitched["traceEvents"]
              if e.get("pid") != 100 and e.get("ph") != "M"]
    assert engine, "sim-time engine events must be stitched in"
    assert stitched["otherData"]["trace_id"] == client_span.context.trace_id
    # The worker's cell.execute span joined the session trace (a
    # different trace id -- the env root), so it is NOT on this
    # timeline; the attempt spans are the per-request view of it.
    assert all(e["name"] != "cell.execute" for e in service)


def test_metrics_registry_counts_admission_outcomes(fake_registry,
                                                    tmp_path, obslog_sink):
    """One duplicate-heavy burst with a planned queue-full fault lands
    in the injected registry: coalesce/shed/completed counters match
    broker stats, and the exposition is valid deterministic 0.0.4 text
    with the families CI's smoke job scrapes for."""
    from repro.obs.metrics import MetricsRegistry

    serial_truth(tmp_path, ["S1"], ["baseline"])
    faults.configure(FaultPlan((
        FaultSpec(cell="S1|3060-Sim|baseline", kind="queue-full", times=1),
    )))
    registry = MetricsRegistry()
    broker = Broker(jobs=1, paused=True, policy=fast_policy(),
                    session="metrics", metrics=registry)
    requests = [SimRequest(workload="S1", gpu="3060-Sim",
                           strategy="baseline") for _ in range(6)]
    outcomes = asyncio.run(ordered_burst(broker, requests))
    shed = [o for o in outcomes if isinstance(o, RequestShed)]
    assert len(shed) == 1

    stats = broker.stats
    counter = lambda name, **labels: registry.get(name).value(**labels)
    assert counter("repro_service_requests_total") == stats.requests == 6
    assert counter("repro_service_shed_total") == stats.shed == 1
    assert counter("repro_service_coalesced_total") == stats.coalesced
    assert counter("repro_service_admitted_total") == stats.admitted == 1
    assert counter("repro_service_completed_total",
                   source="worker") == 1
    assert counter("repro_service_attempts_total", outcome="ok") == 1
    assert registry.get("repro_service_breaker_state").value() == 0
    latency = registry.get("repro_service_request_latency_seconds")
    _, lat_sum = latency.counts()
    assert lat_sum > 0

    text = registry.render_prometheus()
    for family in ("repro_service_coalesced_total",
                   "repro_service_shed_total",
                   "repro_service_breaker_state"):
        assert f"# TYPE {family} " in text
    assert "repro_service_shed_total 1" in text.splitlines()
    assert registry.render_prometheus() == text


def test_daemon_metrics_op_returns_snapshot_and_exposition(fake_registry):
    """The ``metrics`` op answers with both machine forms -- the JSON
    snapshot and the exact Prometheus text served on --metrics-port."""
    from repro.obs.metrics import MetricsRegistry
    from repro.service.daemon import ServiceDaemon

    broker = Broker(jobs=1, metrics=MetricsRegistry(), session="mop")
    daemon = ServiceDaemon(broker)
    reply = asyncio.run(daemon._dispatch({"op": "metrics"}))
    assert reply["status"] == "ok"
    assert "repro_service_requests_total" in reply["metrics"]
    assert "# TYPE repro_service_requests_total counter" \
        in reply["exposition"]
    assert reply["exposition"] == broker.metrics.render_prometheus()


def test_svc_events_share_one_elapsed_ms_schema(fake_registry, tmp_path,
                                                obslog_sink):
    """Schema pin: every ``svc.*`` event carries a numeric
    ``elapsed_ms`` on the broker's shared clock origin, monotone
    non-decreasing in emission order, and ``svc.shed`` keeps its
    post-mortem fields alongside it."""
    serial_truth(tmp_path, ["S1", "S2"], ["baseline"])
    faults.configure(FaultPlan((
        FaultSpec(cell="S1|3060-Sim|baseline", kind="queue-full", times=1),
    )))
    broker = Broker(jobs=1, paused=True, policy=fast_policy(),
                    session="schema")
    requests = [
        SimRequest(workload=w, gpu="3060-Sim", strategy="baseline")
        for w in ("S1", "S2", "S1", "S2")
    ]
    asyncio.run(ordered_burst(broker, requests))

    svc_events = [e for e in read_events(obslog_sink)
                  if e["event"].startswith("svc.")]
    assert svc_events, "the burst must emit service events"
    for event in svc_events:
        assert isinstance(event.get("elapsed_ms"), (int, float)), \
            f"{event['event']} lacks numeric elapsed_ms: {event}"
    elapsed = [e["elapsed_ms"] for e in svc_events]
    assert elapsed == sorted(elapsed), \
        "one shared clock origin means emission order is elapsed order"
    (shed,) = [e for e in svc_events if e["event"] == "svc.shed"]
    for field in ("queue_depth", "queue_size", "deadline_remaining",
                  "cell", "key"):
        assert field in shed
