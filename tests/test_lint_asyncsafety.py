"""Unit tests for the coroutine-context analysis behind ARC013-ARC016.

The rule-level verdicts live in ``tests/test_lint_fixtures.py``; these
tests pin the underlying analysis directly -- the async-reachability
lattice, escape hatches and blocking-effect fixpoint of
:mod:`repro.lint.dataflow.asyncctx` -- on synthetic mini-trees *and* on
the real tree, so a regression is attributable to the analysis that
broke rather than to whichever rule noticed first.

The real-tree expectations double as the static half of the
``REPRO_SANITIZE`` loop-stall cross-check: ``tests/test_loopsan.py``
asserts the blocking frames the runtime shim observes are a subset of
the model pinned here.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lint import run_lint
from repro.lint.dataflow import analysis_for
from repro.lint.dataflow.asyncctx import (
    BOTH,
    CORO,
    SYNC,
    AsyncContexts,
)
from repro.lint.engine import (
    LintConfig,
    LintContext,
    collect_files,
    parse_module,
)
from repro.lint.rules.asyncsafety import _analyses


def build_ctx(tmp_path: Path, files: dict) -> LintContext:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    modules = []
    for path, root in collect_files([tmp_path]):
        module, error = parse_module(path, root)
        assert error is None, f"fixture does not parse: {error}"
        modules.append(module)
    return LintContext(LintConfig(), modules)


def build_contexts(tmp_path: Path, files: dict) -> AsyncContexts:
    ctx = build_ctx(tmp_path, files)
    analysis = analysis_for(ctx)
    return AsyncContexts(analysis.table, analysis.graph, ctx.config)


_SERVICE = {
    "service/gateway.py": (
        "import asyncio\n"
        "import time\n"
        "def shared_helper(x):\n"
        "    return x + 1\n"
        "def coro_only_helper(x):\n"
        "    return shared_helper(x)\n"
        "def blocking_helper(path):\n"
        "    return path.read_text()\n"
        "def escaped_blocker():\n"
        "    time.sleep(1.0)\n"
        "async def admit(request):\n"
        "    coro_only_helper(request)\n"
        "    await asyncio.to_thread(escaped_blocker)\n"
        "    return request\n"
        "def cli_entry(values):\n"
        "    return [shared_helper(v) for v in values]\n"
    ),
}


def test_lattice_sync_coro_both(tmp_path):
    contexts = build_contexts(tmp_path, _SERVICE)

    def ctx_of(name):
        return contexts.context_of(f"service.gateway.{name}")

    assert ctx_of("admit") == CORO
    assert ctx_of("coro_only_helper") == CORO
    assert ctx_of("shared_helper") == BOTH
    assert ctx_of("cli_entry") == SYNC
    assert ctx_of("blocking_helper") == SYNC


def test_escape_hatch_is_not_coroutine_context(tmp_path):
    contexts = build_contexts(tmp_path, _SERVICE)
    qname = "service.gateway.escaped_blocker"
    assert qname in contexts.escapes
    assert "to_thread" in contexts.escapes[qname]
    assert contexts.context_of(qname) == SYNC
    # It still *has* a blocking effect -- it is just never on the loop.
    assert qname in contexts.effects
    assert qname not in contexts.blocking_model()


def test_blocking_effect_propagates_through_sync_calls(tmp_path):
    contexts = build_contexts(tmp_path, {
        "service/chain.py": (
            "def primitive(path):\n"
            "    return open(path).read()\n"
            "def middle(path):\n"
            "    return primitive(path)\n"
            "async def top(path):\n"
            "    return middle(path)\n"
        ),
    })
    effect = contexts.effects["service.chain.middle"]
    assert effect.origin == "service.chain.primitive"
    assert "open" in effect.reason
    model = contexts.blocking_model()
    assert "service.chain.top" in model
    assert "service.chain.middle" in model
    assert "service.chain.primitive" in model


def test_async_boundary_stops_effect_propagation(tmp_path):
    contexts = build_contexts(tmp_path, {
        "service/bounded.py": (
            "import time\n"
            "async def slow_child():\n"
            "    time.sleep(1.0)\n"
            "def parent():\n"
            "    return slow_child()\n"
        ),
    })
    # Calling an async def only instantiates it: parent has no effect,
    # while the child keeps its own (and is judged as a coroutine root).
    assert "service.bounded.parent" not in contexts.effects
    assert "service.bounded.slow_child" in contexts.effects


def test_future_result_hint_classifies(tmp_path):
    contexts = build_contexts(tmp_path, {
        "service/waiting.py": (
            "async def reap(cell_future):\n"
            "    return cell_future.result()\n"
        ),
    })
    effect = contexts.effects["service.waiting.reap"]
    assert ".result()" in effect.reason


def test_await_unwraps_in_unit_interpreter(tmp_path):
    """ARC003 sees through ``await``: an awaited cycles-valued call
    added to a nanosecond binding is still a unit conflict."""
    report = run_lint([_write_tree(tmp_path, {
        "core/mod.py": (
            "async def wait_cycles(n):\n"
            "    return n\n"
            "async def total(a_ns, b):\n"
            "    return a_ns + await wait_cycles(b)\n"
        ),
    })])
    assert "ARC003" in {finding.rule for finding in report.new}


def _write_tree(root: Path, files: dict) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


# --------------------------------------------------------------------- #
# Real-tree expectations: the static model loopsan cross-checks
# --------------------------------------------------------------------- #


def real_tree_ctx() -> LintContext:
    root = Path(repro.__file__).parent
    modules = []
    for path, file_root in collect_files([root]):
        module, error = parse_module(path, file_root)
        if error is None:
            modules.append(module)
    return LintContext(LintConfig(), modules)


def test_real_tree_contexts():
    ctx = real_tree_ctx()
    _, contexts = _analyses(ctx)

    assert contexts.context_of("repro.service.broker.Broker.submit") \
        == CORO
    assert contexts.context_of(
        "repro.service.broker.Broker._dispatch_loop") == CORO
    # The socket client is sync by design: no coroutine ever calls it.
    assert contexts.context_of("repro.service.daemon.call") == SYNC
    # Escape hatches: the pool task and probe run off the loop.
    assert "repro.experiments.parallel._run_spec" in contexts.escapes
    assert "repro.service.supervisor._pool_probe" in contexts.escapes
    assert contexts.context_of(
        "repro.service.supervisor._pool_probe") == SYNC


def test_real_tree_blocking_model():
    """The static coroutine-blocking model of the shipped tree.

    This is the model the REPRO_SANITIZE loop shim diffs runtime
    observations against; pinning the load-bearing members here means
    an unmodeled blocker fails *this* suite even before the chaos
    cross-check runs.
    """
    ctx = real_tree_ctx()
    _, contexts = _analyses(ctx)
    model = contexts.blocking_model()
    # Every deliberate (suppressed or allowlisted) blocker is modeled:
    expected = {
        "repro.obslog.emit",
        "repro.experiments.manifest.RunManifest.record",
        "repro.experiments.manifest.RunManifest.load",
        "repro.experiments.diskcache.engine_fingerprint",
        "repro.experiments.diskcache.result_key",
        "repro.experiments.diskcache.DiskCache.load",
        "repro.experiments.faults.on_admission",
        "repro.trace.io.save_trace",
        "repro.service.broker.Broker.submit",
        "repro.service.broker.Broker._ensure_spooled",
        "repro.service.broker.Broker._recover_from_journal",
    }
    assert expected <= model, sorted(expected - model)
    # And the loop-only plumbing stays out of it:
    for qname in (
        "repro.service.daemon.call",
        "repro.service.daemon.ServiceDaemon._handle",
        "repro.service.loopsan.read_log",
    ):
        assert qname not in model, qname


def test_real_tree_spool_effect_originates_in_save_trace():
    ctx = real_tree_ctx()
    _, contexts = _analyses(ctx)
    effect = contexts.effects[
        "repro.service.broker.Broker._ensure_spooled"
    ]
    assert effect.origin == "repro.trace.io.save_trace"
    assert "savez" in effect.reason


def test_live_tree_lints_clean_with_deliberate_suppressions():
    """The shipped tree carries no new ARC013-016 findings, and every
    deliberate blocker is visible as an inline-justified suppression --
    including the loop-block chaos hook the runtime cross-check fires."""
    report = run_lint([Path(repro.__file__).parent])
    async_new = [f for f in report.new
                 if f.rule in ("ARC013", "ARC014", "ARC015", "ARC016")]
    assert async_new == [], [
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in async_new
    ]
    suppressed = [f for f in report.suppressed if f.rule == "ARC013"]
    assert any("on_admission" in f.message for f in suppressed), (
        "the deliberate loop-block fault hook must stay visible as a "
        "suppressed ARC013 finding"
    )
    assert any("save_trace" in f.message for f in suppressed)


def test_sarif_carries_async_safety_category(tmp_path):
    from repro.lint.sarif import report_to_sarif

    report = run_lint([_write_tree(tmp_path, {
        "service/gateway.py": (
            "import time\n"
            "async def admit(request):\n"
            "    time.sleep(0.01)\n"
        ),
    })])
    sarif = report_to_sarif(report)
    run = sarif["runs"][0]
    rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
    assert rules["ARC013"]["properties"]["category"] == "async-safety"
    assert rules["ARC016"]["properties"]["category"] == "async-safety"
    results = [r for r in run["results"] if r["ruleId"] == "ARC013"]
    assert results, "ARC013 finding must appear in SARIF results"
