"""Tests for the pinhole camera model and orbit viewpoints."""

import numpy as np
import pytest

from repro.render.camera import Camera, look_at_rotation, orbit_cameras


def front_camera(width=64, height=48):
    return Camera.looking_at([0, 0, -4.0], [0, 0, 0], width=width,
                             height=height)


class TestLookAt:
    def test_rotation_is_orthonormal(self):
        rotation = look_at_rotation([1, 2, -3], [0, 0, 0])
        np.testing.assert_allclose(rotation @ rotation.T, np.eye(3),
                                   atol=1e-12)

    def test_forward_axis_points_at_target(self):
        position = np.array([0.0, 0.0, -5.0])
        rotation = look_at_rotation(position, [0, 0, 0])
        forward_world = rotation[2]
        expected = -position / np.linalg.norm(position)
        np.testing.assert_allclose(forward_world, expected, atol=1e-12)

    def test_coincident_position_target_rejected(self):
        with pytest.raises(ValueError):
            look_at_rotation([1, 1, 1], [1, 1, 1])

    def test_parallel_up_rejected(self):
        with pytest.raises(ValueError):
            look_at_rotation([0, -2, 0], [0, 0, 0], up=[0, 1, 0])


class TestCamera:
    def test_validation(self):
        with pytest.raises(ValueError):
            Camera(np.eye(3) * 2, np.zeros(3), 50, 50, 64, 64)
        with pytest.raises(ValueError):
            Camera(np.eye(3), np.zeros(3), -1, 50, 64, 64)
        with pytest.raises(ValueError):
            Camera(np.eye(3), np.zeros(3), 50, 50, 0, 64)

    def test_principal_point_is_image_center(self):
        camera = front_camera(width=100, height=60)
        assert camera.cx == 50
        assert camera.cy == 30

    def test_target_projects_to_center(self):
        camera = front_camera()
        pixels, depth = camera.project(np.array([[0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(pixels[0], [camera.cx, camera.cy],
                                   atol=1e-9)
        assert depth[0] == pytest.approx(4.0)

    def test_point_behind_camera_gets_nan_pixels(self):
        camera = front_camera()
        pixels, depth = camera.project(np.array([[0.0, 0.0, -10.0]]))
        assert np.isnan(pixels[0]).all()
        assert depth[0] < 0

    def test_projection_is_scale_consistent(self):
        """A point twice as far appears at half the offset."""
        camera = front_camera()
        near = np.array([[0.5, 0.0, -2.0]])   # depth 2
        far = np.array([[1.0, 0.0, 0.0]])     # depth 4, double offset
        p_near, _ = camera.project(near)
        p_far, _ = camera.project(far)
        off_near = p_near[0, 0] - camera.cx
        off_far = p_far[0, 0] - camera.cx
        assert off_near == pytest.approx(off_far)

    def test_world_to_camera_inverts(self):
        camera = Camera.looking_at([2, -1, -3], [0.2, 0.1, 0])
        points = np.random.default_rng(0).normal(size=(5, 3))
        cam_space = camera.world_to_camera(points)
        restored = cam_space @ camera.rotation + camera.position
        np.testing.assert_allclose(restored, points, atol=1e-12)


class TestOrbit:
    def test_count_and_resolution(self):
        cameras = orbit_cameras(7, width=32, height=48)
        assert len(cameras) == 7
        assert all(c.width == 32 and c.height == 48 for c in cameras)

    def test_all_views_see_the_target(self):
        target = np.array([0.3, -0.2, 0.5])
        for camera in orbit_cameras(9, radius=5.0, target=target):
            pixels, depth = camera.project(target[None])
            assert depth[0] == pytest.approx(5.0)
            np.testing.assert_allclose(pixels[0], [camera.cx, camera.cy],
                                       atol=1e-6)

    def test_positions_on_circle(self):
        cameras = orbit_cameras(6, radius=3.0)
        for camera in cameras:
            assert np.linalg.norm(camera.position) == pytest.approx(3.0)

    def test_zero_views_rejected(self):
        with pytest.raises(ValueError):
            orbit_cameras(0)
