"""The v2 lint surfaces: ``--changed``, ``--format sarif``, baseline
refresh/pruning, and the git-diff file selection behind them.

The ``--changed`` contract under test: the whole tree is still parsed
(the dataflow layer needs the complete program to stay sound), but
findings, the files-checked count, and the stale-baseline check are
restricted to the changed files plus their transitive importers.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import refresh_baseline, run_lint, write_baseline
from repro.lint.changed import GitError, changed_files


def make_tree(root: Path, files: dict) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


#: Three modules: `timing` has an ARC003 mix, `pipe` imports it (and is
#: clean), `island` has its own independent ARC002 violation.
_TREE = {
    "core/__init__.py": "",
    "core/timing.py": (
        "def total(service_ns, issue_cycles):\n"
        "    return service_ns + issue_cycles\n"
    ),
    "core/pipe.py": (
        "from core.timing import total\n"
        "def drive(a_ns, b_cycles):\n"
        "    return total(a_ns, b_cycles)\n"
    ),
    "core/island.py": (
        "import random\n"
        "def jitter():\n"
        "    return random.random()\n"
    ),
}


# --------------------------------------------------------------------- #
# run_lint(restrict_to=...)
# --------------------------------------------------------------------- #


def test_restrict_to_expands_through_importers(tmp_path):
    tree = make_tree(tmp_path, _TREE)
    report = run_lint([tree], restrict_to=[tree / "core/timing.py"])
    # timing itself plus its importer pipe; island is untouched by the
    # change and must be neither checked nor reported on.
    assert report.checked_paths == ["core/pipe.py", "core/timing.py"]
    assert report.files_checked == 2
    assert {f.rule for f in report.new} == {"ARC003"}
    assert all(f.path != "core/island.py" for f in report.new)


def test_restrict_to_island_reports_only_island(tmp_path):
    tree = make_tree(tmp_path, _TREE)
    report = run_lint([tree], restrict_to=[tree / "core/island.py"])
    assert report.checked_paths == ["core/island.py"]
    assert {f.rule for f in report.new} == {"ARC002"}


def test_restrict_to_unknown_file_checks_nothing(tmp_path):
    tree = make_tree(tmp_path, _TREE)
    report = run_lint([tree], restrict_to=[tree / "core/nothere.py"])
    assert report.checked_paths == []
    assert report.new == []
    assert report.exit_code == 0


def test_restricted_run_ignores_stale_entries_outside_selection(tmp_path):
    tree = make_tree(tmp_path, _TREE)
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, run_lint([tree]).new)
    # Fix island's violation, then lint only timing's closure: island's
    # now-stale entry is outside the checked set and must not fail a
    # partial run (the next full run still flags it).
    (tree / "core/island.py").write_text("def jitter():\n    return 0.5\n")
    partial = run_lint([tree], baseline_path=baseline,
                       restrict_to=[tree / "core/timing.py"])
    assert partial.stale_baseline == []
    assert partial.exit_code == 0
    full = run_lint([tree], baseline_path=baseline)
    assert len(full.stale_baseline) == 1


# --------------------------------------------------------------------- #
# changed_files (git selection)
# --------------------------------------------------------------------- #


def _git(tree: Path, *args: str) -> None:
    subprocess.run(
        ["git", *args], cwd=tree, check=True, capture_output=True,
        env={"HOME": str(tree), "GIT_AUTHOR_NAME": "t",
             "GIT_AUTHOR_EMAIL": "t@t", "GIT_COMMITTER_NAME": "t",
             "GIT_COMMITTER_EMAIL": "t@t",
             "GIT_CONFIG_GLOBAL": "/dev/null",
             "GIT_CONFIG_SYSTEM": "/dev/null"},
    )


@pytest.fixture
def git_tree(tmp_path):
    tree = make_tree(tmp_path / "tree", _TREE)
    _git(tree, "init", "-q")
    _git(tree, "add", "-A")
    _git(tree, "commit", "-qm", "seed")
    return tree


def test_changed_files_sees_worktree_and_untracked(git_tree):
    assert changed_files("HEAD", cwd=git_tree) == []
    (git_tree / "core/timing.py").write_text("X_NS = 1.0\n")
    (git_tree / "core/fresh.py").write_text("Y = 2\n")
    (git_tree / "notes.txt").write_text("not python\n")
    changed = {p.name for p in changed_files("HEAD", cwd=git_tree)}
    assert changed == {"timing.py", "fresh.py"}


def test_changed_files_rejects_bad_revision(git_tree):
    with pytest.raises(GitError):
        changed_files("no-such-rev", cwd=git_tree)


def test_cli_changed_end_to_end(git_tree, monkeypatch, capsys):
    monkeypatch.chdir(git_tree)
    # Clean worktree: nothing to lint, exit 0 without running rules.
    assert main(["lint", str(git_tree), "--no-baseline", "--changed"]) == 0
    assert "nothing to lint" in capsys.readouterr().out
    # Touch timing: its ARC003 fires; island's ARC002 stays out of view.
    (git_tree / "core/timing.py").write_text(
        "def total(service_ns, issue_cycles):\n"
        "    return service_ns + issue_cycles\n"
        "\n"
    )
    assert main(["lint", str(git_tree), "--no-baseline", "--changed"]) == 1
    out = capsys.readouterr().out
    assert "ARC003" in out
    assert "ARC002" not in out


# --------------------------------------------------------------------- #
# SARIF output
# --------------------------------------------------------------------- #


def test_cli_sarif_document_shape(tmp_path, capsys):
    tree = make_tree(tmp_path / "tree", _TREE)
    assert main(["lint", str(tree), "--no-baseline",
                 "--format", "sarif"]) == 1
    captured = capsys.readouterr()
    doc = json.loads(captured.out)
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "arclint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert {"ARC001", "ARC008"} <= set(rule_ids)
    results = run["results"]
    assert {r["ruleId"] for r in results} >= {"ARC002", "ARC003"}
    for result in results:
        assert "arclintContentId/v1" in result["partialFingerprints"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(".py")
        assert location["region"]["startLine"] >= 1
    # The human summary goes to stderr so stdout stays a pure document.
    assert "new finding" in captured.err


def test_sarif_marks_baselined_results_suppressed(tmp_path, capsys):
    tree = make_tree(tmp_path / "tree", _TREE)
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, run_lint([tree]).new)
    assert main(["lint", str(tree), "--baseline", str(baseline),
                 "--format", "sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    results = doc["runs"][0]["results"]
    assert results, "baselined findings must still appear in SARIF"
    assert all(
        result["suppressions"][0]["kind"] == "external"
        for result in results
    )


# --------------------------------------------------------------------- #
# Baseline refresh (--fix-baseline)
# --------------------------------------------------------------------- #


def test_refresh_baseline_reports_added_and_pruned(tmp_path):
    tree = make_tree(tmp_path / "tree", _TREE)
    baseline = tmp_path / "baseline.json"
    total, added, pruned = refresh_baseline(baseline, run_lint([tree]).new)
    assert (total, added, pruned) == (2, 2, 0)
    # Fix island's violation: its entry must be pruned, nothing added.
    (tree / "core/island.py").write_text("def jitter():\n    return 0.5\n")
    total, added, pruned = refresh_baseline(baseline, run_lint([tree]).new)
    assert (total, added, pruned) == (1, 0, 1)
    assert run_lint([tree], baseline_path=baseline).exit_code == 0


def test_refresh_baseline_partial_keeps_unchecked_entries(tmp_path):
    tree = make_tree(tmp_path / "tree", _TREE)
    baseline = tmp_path / "baseline.json"
    refresh_baseline(baseline, run_lint([tree]).new)
    # A --changed refresh over timing's closure must leave island's
    # entry alone even though the restricted run never saw it fire.
    restricted = run_lint([tree], restrict_to=[tree / "core/timing.py"])
    total, added, pruned = refresh_baseline(
        baseline, restricted.new,
        checked_paths=set(restricted.checked_paths),
    )
    assert (total, added, pruned) == (2, 0, 0)
    assert run_lint([tree], baseline_path=baseline).exit_code == 0


def test_cli_fix_baseline_prints_prune_counts(tmp_path, capsys):
    tree = make_tree(tmp_path / "tree", _TREE)
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(tree), "--baseline", str(baseline),
                 "--fix-baseline"]) == 0
    assert "(2 added, 0 pruned)" in capsys.readouterr().out
    (tree / "core/island.py").write_text("def jitter():\n    return 0.5\n")
    assert main(["lint", str(tree), "--baseline", str(baseline),
                 "--fix-baseline"]) == 0
    assert "(0 added, 1 pruned)" in capsys.readouterr().out
