"""Tests for the §5.6 pagerank counter-example workload."""

import numpy as np
import pytest

from repro.gpu import RTX4090_SIM, simulate_kernel
from repro.core import ArcHW, BaselineAtomic
from repro.trace.analysis import intra_warp_locality
from repro.workloads.pagerank import PagerankWorkload, pagerank_trace


@pytest.fixture(scope="module")
def workload():
    return PagerankWorkload(n_nodes=1000, attachments=3, seed=1)


class TestPagerank:
    def test_validation(self):
        with pytest.raises(ValueError):
            PagerankWorkload(n_nodes=3, attachments=4)

    def test_edges_are_bidirectional(self, workload):
        assert workload.n_edges % 2 == 0
        pairs = set(zip(workload.sources.tolist(),
                        workload.destinations.tolist()))
        assert all((v, u) in pairs for u, v in list(pairs)[:100])

    def test_ranks_form_distribution(self, workload):
        ranks = workload.solve(iterations=40)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-9)
        assert (ranks > 0).all()

    def test_iterate_matches_networkx(self, workload):
        """Converged ranks agree with networkx's pagerank."""
        import networkx as nx
        graph = nx.barabasi_albert_graph(1000, 3, seed=1)
        expected = nx.pagerank(graph, alpha=workload.damping, tol=1e-12)
        ours = workload.solve(iterations=80)
        reference = np.array([expected[n] for n in range(1000)])
        np.testing.assert_allclose(ours, reference, atol=1e-8)

    def test_iterate_shape_checked(self, workload):
        with pytest.raises(ValueError):
            workload.iterate(np.zeros(5))

    def test_trace_has_low_intra_warp_locality(self, workload):
        """The §5.6 measurement: <0.1% of warps fully coalesced."""
        trace = workload.capture_trace()
        assert intra_warp_locality(trace) < 0.001

    def test_trace_values_reproduce_push_iteration(self, workload):
        trace = workload.capture_trace(with_values=True)
        pushed = trace.reference_sums()[:, 0]
        ranks = np.full(workload.n_nodes, 1.0 / workload.n_nodes)
        expected = (workload.iterate(ranks)
                    - (1 - workload.damping) / workload.n_nodes) / workload.damping
        np.testing.assert_allclose(pushed, expected, atol=1e-12)

    def test_arc_is_neutral_on_pagerank(self, workload):
        """§5.6: no benefit, but also no harm (reduction path bypasses)."""
        trace = workload.capture_trace()
        baseline = simulate_kernel(trace, RTX4090_SIM, BaselineAtomic())
        arc = simulate_kernel(trace, RTX4090_SIM, ArcHW())
        assert arc.speedup_over(baseline) == pytest.approx(1.0, abs=0.15)
        assert arc.ru_values < trace.total_lane_ops * 0.05

    def test_convenience_function(self):
        trace = pagerank_trace(n_nodes=500, attachments=3, seed=2)
        assert trace.name == "pagerank"
        assert not trace.bfly_eligible
        assert trace.num_params == 1
