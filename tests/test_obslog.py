"""Structured run logging: JSONL round-trips and the event contract.

Unit tests pin the :mod:`repro.obslog` primitives (env-carried sink,
append-only JSONL, torn-line tolerance); the integration tests drive
:func:`~repro.experiments.parallel.run_matrix_parallel` -- including
under the fault-injection harness -- and assert the promised event
stream: every cell's start and finish, its cache disposition, retries,
and resume decisions, deterministic across reruns.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obslog
from repro.experiments import diskcache, faults, runner
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.parallel import run_matrix_parallel
from repro.experiments.resilience import RetryPolicy, RunReport
from repro.experiments.runner import clear_caches
from repro.trace import coalesced_trace

WORKLOADS = ["P1", "P2"]
STRATEGIES = ["baseline", "ARC-HW"]
GPUS = ["3060-Sim"]
CELL_IDS = {
    f"{workload}|{gpu}|{strategy}"
    for workload in WORKLOADS for gpu in GPUS for strategy in STRATEGIES
}

#: Fields whose values vary run to run (clocks, pids, tmp dirs, and the
#: random span/trace identifiers plus wall-clock span timings) -- the
#: deterministic contract covers everything else.
VOLATILE_FIELDS = ("ts", "pid", "duration", "backoff", "cache_root",
                   "trace_id", "span_id", "parent_id", "start_unix",
                   "dur_ms", "elapsed_ms")


class FakeWorkload:
    """Deterministic synthetic stand-in for a Table 2 workload.

    Each key gets its own seed: the disk cache is keyed on trace
    *content*, so identical traces under different names would share
    entries and muddle the per-cell cache bookkeeping under test.
    """

    def __init__(self, key, seed):
        self.key = key
        self.seed = seed

    def capture_trace(self):
        return coalesced_trace(n_batches=200, num_params=4, seed=self.seed,
                               name=self.key)


@pytest.fixture
def fake_registry(monkeypatch):
    fakes = {key: FakeWorkload(key, seed=11 + index)
             for index, key in enumerate(WORKLOADS)}
    monkeypatch.setattr(runner, "load_workload", lambda key: fakes[key])
    return fakes


@pytest.fixture(autouse=True)
def clean_fault_plan():
    faults.configure(None)
    yield
    faults.configure(None)


@pytest.fixture
def obslog_sink(tmp_path):
    """Point the run log at a scratch file; always restore the old sink."""
    path = tmp_path / "events.jsonl"
    previous = obslog.set_obslog_path(path)
    yield path
    obslog.set_obslog_path(previous)


def quick_policy():
    return RetryPolicy(max_attempts=3, timeout=None,
                       backoff_base=0.01, backoff_max=0.05)


def events_by_name(events):
    grouped: dict = {}
    for event in events:
        grouped.setdefault(event["event"], []).append(event)
    return grouped


# --------------------------------------------------------------------- #
# Primitives
# --------------------------------------------------------------------- #

def test_emit_is_a_no_op_without_a_sink(tmp_path, monkeypatch):
    monkeypatch.delenv(obslog.OBSLOG_ENV, raising=False)
    assert obslog.obslog_path() is None
    obslog.emit("orphan", detail=1)  # must not raise or create files
    assert list(tmp_path.iterdir()) == []


def test_emit_and_read_round_trip(obslog_sink):
    obslog.emit("alpha", n=1, name="first")
    obslog.emit("beta", ratio=0.5, items=["a", "b"])
    events = obslog.read_events(obslog_sink)
    assert [event["event"] for event in events] == ["alpha", "beta"]
    assert events[0]["n"] == 1 and events[0]["name"] == "first"
    assert events[1]["items"] == ["a", "b"]
    for event in events:
        assert event["ts"] > 0
        assert event["pid"] == os.getpid()


def test_set_obslog_path_carries_through_the_environment(tmp_path):
    path = tmp_path / "carried.jsonl"
    previous = obslog.set_obslog_path(path)
    try:
        assert os.environ[obslog.OBSLOG_ENV] == str(path)
        assert obslog.obslog_path() == str(path)
    finally:
        obslog.set_obslog_path(previous)
    assert obslog.obslog_path() is None


def test_read_events_skips_blank_and_torn_lines(tmp_path):
    path = tmp_path / "torn.jsonl"
    good = json.dumps({"event": "ok", "ts": 1.0, "pid": 1})
    path.write_text(f"{good}\n\n{{\"event\": \"torn\", \"ts\":\n{good}\n")
    events = obslog.read_events(path)
    assert [event["event"] for event in events] == ["ok", "ok"]


def test_read_events_on_missing_file(tmp_path):
    assert obslog.read_events(tmp_path / "absent.jsonl") == []


# --------------------------------------------------------------------- #
# Run-scoped event stream
# --------------------------------------------------------------------- #

def test_parallel_run_logs_every_cell(fake_registry, obslog_sink):
    """A clean parallel run journals the run envelope, every cell's
    start/attempt/finish, and each cell's cache disposition."""
    report = RunReport()
    run_matrix_parallel(WORKLOADS, STRATEGIES, GPUS, jobs=2,
                        policy=quick_policy(), report=report)
    grouped = events_by_name(obslog.read_events(obslog_sink))

    assert len(grouped["run.start"]) == 1
    start = grouped["run.start"][0]
    assert start["cells"] == len(CELL_IDS) and start["jobs"] == 2
    assert set(start["workloads"]) == set(WORKLOADS)

    for name in ("cell.start", "cell.attempt", "cell.finish"):
        assert {event["cell"] for event in grouped[name]} == CELL_IDS, name
    assert all(event["outcome"] == "ok"
               for event in grouped["cell.attempt"])

    # Cold cache: every cell misses once and is written back once.  The
    # keyed writes let the log answer "where did this result come from".
    cell_keys = {event["key"] for event in grouped["cell.finish"]}
    assert len(cell_keys) == len(CELL_IDS)
    assert {event["key"] for event in grouped["cache.miss"]} == cell_keys
    assert {event["key"] for event in grouped["cache.write"]} == cell_keys

    finish = grouped["run.finish"][0]
    assert finish["cells"] == len(CELL_IDS)
    assert finish["simulated"] == len(CELL_IDS)
    assert finish["resumed"] == 0


def test_resumed_run_logs_skip_decisions(fake_registry, obslog_sink):
    """Interrupt a run, then resume: the second log must record one
    `cell.skip` (manifest-resume) per already-finished cell."""
    faults.configure(FaultPlan((
        FaultSpec(cell="P1|3060-Sim|baseline", kind="interrupt"),
    )))
    with pytest.raises(KeyboardInterrupt):
        run_matrix_parallel(WORKLOADS, STRATEGIES, GPUS, jobs=2,
                            policy=quick_policy(), report=RunReport())
    first = events_by_name(obslog.read_events(obslog_sink))
    completed = {event["cell"] for event in first.get("cell.finish", ())}
    assert completed, "the interrupting cell finishes before raising"

    faults.configure(None)
    clear_caches()
    obslog_sink.unlink()
    report = RunReport()
    run_matrix_parallel(WORKLOADS, STRATEGIES, GPUS, jobs=2,
                        policy=quick_policy(), report=report)
    grouped = events_by_name(obslog.read_events(obslog_sink))
    skips = grouped["cell.skip"]
    assert {event["cell"] for event in skips} == completed
    assert all(event["reason"] == "manifest-resume" for event in skips)
    assert grouped["run.finish"][0]["resumed"] == len(completed)
    assert {event["cell"] for event in grouped["cell.finish"]} \
        == CELL_IDS - completed


def stripped(events):
    """Multiset of events with run-varying fields removed."""
    cleaned = []
    for event in events:
        cleaned.append(json.dumps(
            {key: value for key, value in event.items()
             if key not in VOLATILE_FIELDS},
            sort_keys=True,
        ))
    return sorted(cleaned)


def test_event_set_is_deterministic_under_fault_injection(
        fake_registry, obslog_sink, tmp_path):
    """Two cold runs under the same PR 3 fault plan (one transient error,
    retried in-pool) produce the same event multiset once clocks and
    pids are stripped."""
    plan = FaultPlan((
        FaultSpec(cell="P1|3060-Sim|baseline", kind="error", times=1),
    ))
    streams = []
    for attempt in range(2):
        faults.configure(plan)
        clear_caches()
        obslog_sink.write_text("")
        with diskcache.isolated(tmp_path / f"cache-{attempt}"):
            run_matrix_parallel(WORKLOADS, STRATEGIES, GPUS, jobs=2,
                                policy=quick_policy(), report=RunReport())
        streams.append(stripped(obslog.read_events(obslog_sink)))
    assert streams[0] == streams[1]

    grouped = events_by_name(
        [json.loads(line) for line in streams[0]]
    )
    assert {event["cell"] for event in grouped["cell.retry"]} \
        == {"P1|3060-Sim|baseline"}
    outcomes = [event["outcome"] for event in grouped["cell.attempt"]
                if event["cell"] == "P1|3060-Sim|baseline"]
    assert sorted(outcomes) == ["error", "ok"]


# --------------------------------------------------------------------- #
# Reader robustness under concurrent writers (PR 10)
# --------------------------------------------------------------------- #
#
# The span stitcher and every post-mortem tool sit on read_events, so
# its torn-line contract gets its own proofs: a property-style corpus
# of interleaved/corrupted streams, and real O_APPEND contention from
# concurrent writer processes.

from hypothesis import given, settings
from hypothesis import strategies as st

_record_fields = st.fixed_dictionaries({
    "writer": st.integers(min_value=0, max_value=7),
    "seq": st.integers(min_value=0, max_value=999),
    "payload": st.text(
        alphabet=st.characters(codec="utf-8",
                               blacklist_categories=("Cs",)),
        max_size=40,
    ),
})


def _serialize(record):
    payload = {"event": "prop.write", "ts": 0.0, "pid": 1}
    payload.update(record)
    return json.dumps(payload, sort_keys=True) + "\n"


@st.composite
def _torn_corpus(draw):
    """(file bytes, expected surviving records).

    Complete single-write lines from many writers in any interleaving,
    salted with blank lines, strict-prefix "partial flush" fragments
    (newline-terminated, so they corrupt only themselves), and
    optionally one torn tail with no newline -- the only corruption
    O_APPEND single-write emission can actually produce mid-file being
    a killed writer's final line.
    """
    good = draw(st.lists(_record_fields, max_size=12))
    chunks = []
    for record in good:
        line = _serialize(record)
        # Prepend junk *lines* before some records: blank, or a strict
        # prefix of a valid record plus newline (a partial flush that
        # got its newline from a later writer's torn start).
        if draw(st.booleans()):
            donor = _serialize(draw(_record_fields))
            cut = draw(st.integers(min_value=0,
                                   max_value=len(donor) - 2))
            chunks.append(donor[:cut] + "\n")
        chunks.append(line)
    if draw(st.booleans()):  # torn tail: a suffix-less final write
        donor = _serialize(draw(_record_fields))
        cut = draw(st.integers(min_value=1, max_value=len(donor) - 1))
        chunks.append(donor[:cut])
    return "".join(chunks), good


@settings(max_examples=60, deadline=None)
@given(_torn_corpus())
def test_reader_survives_any_torn_interleaving(tmp_path_factory, corpus):
    """Property: whatever mix of complete lines, partial flushes and a
    torn tail lands in the file, read_events returns exactly the
    complete records, in file order, and never raises."""
    content, good = corpus
    path = tmp_path_factory.mktemp("torn") / "obslog.jsonl"
    path.write_text(content, encoding="utf-8")
    events = obslog.read_events(path)
    assert [
        {"writer": e["writer"], "seq": e["seq"], "payload": e["payload"]}
        for e in events
    ] == good


def test_concurrent_writer_processes_never_tear_lines(tmp_path):
    """Real contention: several writer processes hammer one sink via
    O_APPEND single-write emit; the reader recovers every record, each
    writer's sequence intact and in order, with zero dropped lines."""
    import subprocess
    import sys
    from pathlib import Path

    sink = tmp_path / "mp-obslog.jsonl"
    writers, per_writer = 4, 200
    script = (
        "import sys\n"
        "from repro import obslog\n"
        "writer = int(sys.argv[1])\n"
        "for seq in range(int(sys.argv[2])):\n"
        "    obslog.emit('mp.write', writer=writer, seq=seq,\n"
        "                payload='x' * 512)\n"
    )
    env = dict(os.environ)
    env["REPRO_OBSLOG"] = str(sink)
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    procs = [
        subprocess.Popen([sys.executable, "-c", script, str(i),
                          str(per_writer)], env=env)
        for i in range(writers)
    ]
    for proc in procs:
        assert proc.wait(timeout=120) == 0

    raw_lines = sink.read_text(encoding="utf-8").splitlines()
    events = obslog.read_events(sink)
    assert len(raw_lines) == len(events) == writers * per_writer, \
        "O_APPEND single-write emission must never tear under contention"
    by_writer = {}
    for event in events:
        by_writer.setdefault(event["writer"], []).append(event["seq"])
    assert set(by_writer) == set(range(writers))
    for writer, seqs in by_writer.items():
        assert seqs == list(range(per_writer)), \
            f"writer {writer} out of order"

    # A crash-torn tail (no newline) hides that line only.
    with open(sink, "a", encoding="utf-8") as handle:
        handle.write('{"event": "mp.write", "writer": 0, "seq": 99')
    assert len(obslog.read_events(sink)) == writers * per_writer
