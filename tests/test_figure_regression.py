"""Golden regression tests against the recorded paper-figure numbers.

``benchmarks/results/*.json`` pins the headline numbers of the committed
evaluation.  These tests re-simulate a fast slice of those figures from
scratch (NvDiffRec workloads: sub-second captures) and assert the fresh
numbers match the recorded ones to 6 decimal places, so engine or
strategy refactors cannot silently drift the paper's results.  The
records are the regression baseline: if a change is *supposed* to move
the numbers, re-run the benchmark harness to regenerate them.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import (
    arithmetic_mean,
    best_sw_result,
    get_result,
)

RESULTS_DIR = Path(__file__).resolve().parents[1] / "benchmarks" / "results"

#: Matching the paper's reported precision: figure JSONs store full
#: floats; we compare to 6 decimals so the assertion is about simulated
#: physics, not string formatting.
DECIMALS = 6


def load_rows(figure: str) -> list:
    path = RESULTS_DIR / f"{figure}.json"
    if not path.is_file():
        pytest.skip(f"{path.name} not recorded; run the benchmark harness")
    return json.loads(path.read_text())


def assert_pinned(fresh: float, recorded: float, context) -> None:
    assert round(fresh, DECIMALS) == round(recorded, DECIMALS), (
        f"{context}: fresh {fresh!r} drifted from recorded {recorded!r}"
    )


FIG18_19_STRATEGIES = ("ARC-HW", "LAB", "LAB-ideal", "PHI")


@pytest.mark.parametrize(
    "figure, gpu, keys",
    [
        ("fig18_arc_hw_3060", "3060-Sim", ("NV-BB", "NV-SP")),
        ("fig19_arc_hw_4090", "4090-Sim", ("NV-BB",)),
    ],
)
def test_fig18_19_speedups_pinned(figure, gpu, keys):
    recorded = {row[0]: row[1:] for row in load_rows(figure)}
    missing = [key for key in keys if key not in recorded]
    if missing:
        pytest.skip(f"{figure} lacks rows for {missing} (subset run?)")
    fresh_rows = {}
    for key in keys:
        baseline = get_result(key, gpu, "baseline")
        fresh_rows[key] = [
            get_result(key, gpu, strategy).speedup_over(baseline)
            for strategy in FIG18_19_STRATEGIES
        ]
        for strategy, fresh, pinned in zip(
            FIG18_19_STRATEGIES, fresh_rows[key], recorded[key]
        ):
            assert_pinned(fresh, pinned, (figure, key, strategy))
    # Headline aggregate over the pinned slice, also to 6 decimals.
    for i, strategy in enumerate(FIG18_19_STRATEGIES):
        assert_pinned(
            arithmetic_mean(fresh_rows[key][i] for key in keys),
            arithmetic_mean(recorded[key][i] for key in keys),
            (figure, "mean", strategy),
        )


def test_fig22_arc_sw_grad_speedups_pinned():
    """Figure 22's SW-B / SW-S / best-gradient columns for one workload
    per GPU (rows are [gpu, workload, sw_b, sw_s, best_grad, e2e])."""
    recorded = {(row[0], row[1]): row[2:] for row in load_rows("fig22_arc_sw")}
    slice_keys = [("3060-Sim", "NV-SP"), ("4090-Sim", "NV-BB")]
    missing = [k for k in slice_keys if k not in recorded]
    if missing:
        pytest.skip(f"fig22 lacks rows for {missing} (subset run?)")
    for gpu, key in slice_keys:
        baseline = get_result(key, gpu, "baseline")
        sw_s = best_sw_result(key, gpu, "S").speedup_over(baseline)
        sw_b = best_sw_result(key, gpu, "B").speedup_over(baseline)
        best_grad = max(sw_b, sw_s)
        pinned_b, pinned_s, pinned_best = recorded[(gpu, key)][:3]
        assert_pinned(sw_b, pinned_b, ("fig22", gpu, key, "SW-B"))
        assert_pinned(sw_s, pinned_s, ("fig22", gpu, key, "SW-S"))
        assert_pinned(best_grad, pinned_best, ("fig22", gpu, key, "best"))


def recorded_means(figure: str) -> dict:
    rows = load_rows(figure)
    return {
        strategy: arithmetic_mean(row[i + 1] for row in rows)
        for i, strategy in enumerate(FIG18_19_STRATEGIES)
    }


@pytest.mark.parametrize(
    "figure", ["fig18_arc_hw_3060", "fig19_arc_hw_4090"]
)
def test_fig18_19_recorded_aggregate_shape(figure):
    """The recorded full-set aggregates still satisfy the paper's
    qualitative claims (guards against regenerating the JSONs from a
    broken engine and blessing the drift)."""
    means = recorded_means(figure)
    assert means["ARC-HW"] > means["LAB-ideal"] > means["PHI"]
    assert means["ARC-HW"] > 1.5
    assert 0.7 < means["PHI"] < 1.5


def test_fig18_19_recorded_cross_gpu_shape():
    """Paper §7.1: ARC-HW's mean speedup is larger on the 4090 (worse
    SM:ROP ratio) than on the 3060 -- must hold across the *recorded*
    figures too, not just fresh simulation."""
    assert (
        recorded_means("fig19_arc_hw_4090")["ARC-HW"]
        > recorded_means("fig18_arc_hw_3060")["ARC-HW"]
    )
