"""Chaos suite: fault-injected proofs of the execution layer's contract.

Every recovery path of :mod:`repro.experiments.resilience` is driven by
a deterministic fault plan (:mod:`repro.experiments.faults`) and held to
the repo's core invariant: recovery never changes results.  The
acceptance proofs:

* **chaos determinism** -- a parallel sweep suffering a worker crash, a
  hang past the per-cell timeout and a corrupted cache entry is
  bit-identical to a clean serial run, and a warm rerun quarantines the
  corrupt entry instead of serving or deleting it;
* **resume** -- a run interrupted after K of N cells re-simulates only
  the N-K remainder (asserted via the RunReport and the manifest);
* **clean Ctrl-C** -- an interrupt shuts the pool down with
  ``cancel_futures``, and every completed cell is already seeded in the
  caches and journaled in the manifest;
* **bounded retries and graceful degradation** -- transient errors are
  retried with deterministic backoff, exhausted cells fall back to
  in-process execution, and only a cell that fails *that too* raises.

The pool-driving tests spawn real worker processes; the unit tests at
the bottom cover the plan/policy/manifest primitives in-process.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments import diskcache, faults, runner
from repro.experiments import parallel
from repro.experiments.faults import FaultPlan, FaultSpec, InjectedFault
from repro.experiments.manifest import RunManifest, run_key
from repro.experiments.parallel import plan_cells, run_matrix_parallel
from repro.experiments.resilience import (
    CellExecutionError,
    RetryPolicy,
    RunReport,
)
from repro.experiments.runner import clear_caches, run_matrix
from repro.gpu import SIMULATED_GPUS
from repro.trace import coalesced_trace, scattered_trace

WORKLOADS = ["P1", "P2"]
STRATEGIES = ["baseline", "ARC-HW"]
GPUS = ["3060-Sim"]
N_CELLS = 4

CRASH_CELL = "P1|3060-Sim|baseline"
CORRUPT_CELL = "P1|3060-Sim|ARC-HW"
HANG_CELL = "P2|3060-Sim|ARC-HW"


class FakeWorkload:
    """Deterministic synthetic stand-in for a Table 2 workload."""

    def __init__(self, key, bfly=True):
        self.key = key
        self._bfly = bfly

    def capture_trace(self):
        factory = coalesced_trace if self._bfly else scattered_trace
        return factory(n_batches=300, num_params=4, seed=11, name=self.key)


@pytest.fixture
def fake_registry(monkeypatch):
    fakes = {"P1": FakeWorkload("P1"), "P2": FakeWorkload("P2", bfly=False)}
    monkeypatch.setattr(runner, "load_workload", lambda key: fakes[key])
    return fakes


@pytest.fixture(autouse=True)
def clean_fault_plan():
    """No fault plan leaks into or out of any test (incl. REPRO_FAULTS)."""
    faults.configure(None)
    yield
    faults.configure(None)


def cell_tuples(cells):
    return [
        (c.workload, c.gpu, c.strategy, c.result.to_dict()) for c in cells
    ]


def chaos_policy(timeout=None):
    """Fast-retry policy so injected faults resolve in test time."""
    return RetryPolicy(
        max_attempts=3, timeout=timeout,
        backoff_base=0.01, backoff_max=0.05,
    )


def serial_baseline(tmp_path, workloads=WORKLOADS):
    """Clean, uncached serial truth; leaves a fresh enabled disk cache."""
    diskcache.configure(enabled=False)
    serial = run_matrix(workloads, STRATEGIES, GPUS)
    clear_caches()
    diskcache.configure(root=tmp_path / "chaos-cache", enabled=True)
    return serial


# --------------------------------------------------------------------- #
# Acceptance proofs
# --------------------------------------------------------------------- #


def test_chaos_run_is_bit_identical_to_clean_serial(fake_registry, tmp_path):
    """One crash, one hang past the timeout, one corrupted cache entry:
    the parallel sweep still matches clean serial bit for bit, and the
    corruption is quarantined (never deleted) on the warm rerun."""
    serial = serial_baseline(tmp_path)
    assert len(serial) == N_CELLS

    faults.configure(FaultPlan((
        FaultSpec(cell=CRASH_CELL, kind="crash"),
        FaultSpec(cell=HANG_CELL, kind="hang", times=2, seconds=20.0),
        FaultSpec(cell=CORRUPT_CELL, kind="corrupt-cache", times=3),
    )))
    report = RunReport()
    chaotic = run_matrix_parallel(
        WORKLOADS, STRATEGIES, GPUS, jobs=2,
        policy=chaos_policy(timeout=3.0), report=report,
    )
    assert cell_tuples(chaotic) == cell_tuples(serial)
    assert report.crashes >= 1
    assert report.timeouts >= 1
    assert report.pool_restarts >= 2
    assert all(
        cell.source in ("worker", "serial-fallback") for cell in report.cells
    )

    # Warm rerun: the corrupt entry is a quarantined miss, everything
    # else comes straight from disk, and the results are unchanged.
    faults.configure(None)
    clear_caches()
    cache = diskcache.active_cache()
    warm = run_matrix(WORKLOADS, STRATEGIES, GPUS)
    assert cell_tuples(warm) == cell_tuples(serial)
    assert cache.stats.quarantined == 1
    quarantined = cache.quarantined_entries()
    assert quarantined, "corrupt entry must be preserved, not deleted"
    corrupt_key = diskcache.result_key(
        SIMULATED_GPUS["3060-Sim"],
        runner.get_trace("P1"),
        runner.make_strategy("ARC-HW"),
    )
    assert any(path.name.startswith(corrupt_key) for path in quarantined)


def test_interrupted_run_resumes_without_resimulating(fake_registry,
                                                      tmp_path):
    """Interrupt after K of N cells; the rerun re-simulates only N-K."""
    serial = serial_baseline(tmp_path)
    faults.configure(FaultPlan((
        FaultSpec(cell=CRASH_CELL, kind="interrupt"),
    )))
    report = RunReport()
    with pytest.raises(KeyboardInterrupt):
        run_matrix_parallel(WORKLOADS, STRATEGIES, GPUS, jobs=2,
                            policy=chaos_policy(), report=report)
    assert report.interrupted

    cache = diskcache.active_cache()
    manifest_paths = list((cache.root / "manifests").glob("*.jsonl"))
    assert len(manifest_paths) == 1, "interrupt must leave the journal"
    finished = RunManifest(manifest_paths[0]).load()
    completed_before = len(finished)
    assert 1 <= completed_before <= N_CELLS

    faults.configure(None)
    clear_caches()
    resumed_report = RunReport()
    resumed = run_matrix_parallel(WORKLOADS, STRATEGIES, GPUS, jobs=2,
                                  policy=chaos_policy(),
                                  report=resumed_report)
    assert cell_tuples(resumed) == cell_tuples(serial)
    assert resumed_report.resumed == completed_before
    assert resumed_report.simulated == N_CELLS - completed_before
    assert not list((cache.root / "manifests").glob("*.jsonl")), \
        "a completed run must discard its journal"


def test_interrupt_shuts_pool_down_cleanly(fake_registry, tmp_path,
                                           monkeypatch):
    """Ctrl-C cancels queued futures and loses no completed work: the
    finished cells are seeded in memory, on disk, and in the manifest."""
    serial_baseline(tmp_path)
    shutdowns = []

    class SpyPool(ProcessPoolExecutor):
        def shutdown(self, wait=True, *, cancel_futures=False):
            shutdowns.append({"wait": wait, "cancel_futures": cancel_futures})
            return super().shutdown(wait, cancel_futures=cancel_futures)

    monkeypatch.setattr(parallel, "ProcessPoolExecutor", SpyPool)
    faults.configure(FaultPlan((
        FaultSpec(cell=CRASH_CELL, kind="interrupt"),
    )))
    report = RunReport()
    with pytest.raises(KeyboardInterrupt):
        run_matrix_parallel(WORKLOADS, STRATEGIES, GPUS, jobs=2,
                            policy=chaos_policy(), report=report)
    assert {"wait": False, "cancel_futures": True} in shutdowns

    # The interrupted cell completed first: journaled under its
    # content-address key, entry on disk, and seeded into memory.
    cache = diskcache.active_cache()
    key = diskcache.result_key(
        SIMULATED_GPUS["3060-Sim"],
        runner.get_trace("P1"),
        runner.make_strategy("baseline"),
    )
    manifest_paths = list((cache.root / "manifests").glob("*.jsonl"))
    assert manifest_paths
    assert key in RunManifest(manifest_paths[0]).load()
    assert cache.entry_path(key).exists()

    monkeypatch.setattr(
        runner, "simulate_kernel",
        lambda *a, **k: pytest.fail("completed cell must be seeded"),
    )
    diskcache.configure(enabled=False)  # memory layer alone must serve it
    result = runner.get_result("P1", "3060-Sim", "baseline")
    assert result.total_cycles > 0


def test_transient_errors_retry_then_degrade_to_serial(fake_registry,
                                                       tmp_path):
    """Bounded retries recover a flaky cell; an exhausted cell falls
    back in-process -- both with results identical to clean serial."""
    serial = serial_baseline(tmp_path, workloads=["P1"])
    faults.configure(FaultPlan((
        FaultSpec(cell="P1|3060-Sim|baseline", kind="error", times=2),
        FaultSpec(cell="P1|3060-Sim|ARC-HW", kind="error", times=3),
    )))
    report = RunReport()
    cells = run_matrix_parallel(["P1"], STRATEGIES, GPUS, jobs=2,
                                policy=chaos_policy(), report=report)
    assert cell_tuples(cells) == cell_tuples(serial)

    by_cell = {cell.cell: cell for cell in report.cells}
    flaky = by_cell["P1|3060-Sim|baseline"]
    assert [r.outcome for r in flaky.attempts] == ["error", "error", "ok"]
    assert flaky.source == "worker"
    assert "InjectedFault" in flaky.attempts[0].error

    exhausted = by_cell["P1|3060-Sim|ARC-HW"]
    assert [r.outcome for r in exhausted.attempts] == (
        ["error"] * 3 + ["ok"]
    )
    assert exhausted.source == "serial-fallback"
    assert report.fallbacks == 1
    assert report.retries >= 4


def test_cell_failing_even_the_fallback_raises(fake_registry, tmp_path):
    serial_baseline(tmp_path, workloads=["P1"])
    faults.configure(FaultPlan((
        FaultSpec(cell="P1|3060-Sim|baseline", kind="error", times=10),
    )))
    report = RunReport()
    with pytest.raises(CellExecutionError) as excinfo:
        run_matrix_parallel(["P1"], ["baseline"], GPUS, jobs=2,
                            policy=chaos_policy(), report=report)
    assert excinfo.value.cell == "P1|3060-Sim|baseline"
    attempts = excinfo.value.report.cells[0].attempts
    assert attempts[-1].outcome == "fallback-error"
    assert len(attempts) == 4  # 3 worker attempts + the fallback


# --------------------------------------------------------------------- #
# Fault-plan primitives
# --------------------------------------------------------------------- #


def test_fault_plan_round_trips_through_env(monkeypatch):
    plan = FaultPlan((
        FaultSpec(cell="a|g|s", kind="crash"),
        FaultSpec(cell="b|g|s", kind="hang", times=2, seconds=1.5),
    ))
    assert FaultPlan.from_json(plan.to_json()) == plan

    faults.configure(plan)
    assert json.loads(
        __import__("os").environ[faults.FAULTS_ENV]
    ) == json.loads(plan.to_json())
    # A fresh process would read the plan back from the environment.
    monkeypatch.setattr(faults, "_plan", None)
    assert faults.active_plan() == plan
    faults.configure(None)
    assert faults.FAULTS_ENV not in __import__("os").environ
    assert faults.active_plan() is None


def test_fault_plan_accepts_bare_list_shorthand():
    """A hand-typed REPRO_FAULTS is usually a plain JSON list; it parses
    the same as the canonical {"faults": [...]} wrapper."""
    wrapped = FaultPlan.from_json(
        '{"faults": [{"cell": "a|g|s", "kind": "error", "times": 2}]}'
    )
    bare = FaultPlan.from_json(
        '[{"cell": "a|g|s", "kind": "error", "times": 2}]'
    )
    assert bare == wrapped
    assert bare.specs[0].times == 2


def test_fault_spec_validation_and_matching():
    with pytest.raises(ValueError):
        FaultSpec(cell="a|g|s", kind="meteor-strike")
    with pytest.raises(ValueError):
        FaultSpec(cell="a|g|s", kind="crash", times=0)
    spec = FaultSpec(cell="a|g|s", kind="error", times=2)
    assert spec.matches("a|g|s", "error", 1)
    assert spec.matches("a|g|s", "error", 2)
    assert not spec.matches("a|g|s", "error", 3)
    assert not spec.matches("a|g|s", "crash", 1)
    assert not spec.matches("b|g|s", "error", 1)
    assert faults.cell_id("w", "g", "s") == "w|g|s"


def test_error_faults_fire_in_parent_but_crash_and_hang_do_not(
    monkeypatch,
):
    """In the parent (serial fallback), crash/hang are suppressed --
    firing them there would turn a recoverable fault into run loss."""
    monkeypatch.setattr(faults, "_in_worker", False)
    faults.configure(FaultPlan((
        FaultSpec(cell="a|g|s", kind="crash"),
        FaultSpec(cell="a|g|s", kind="hang", seconds=60.0),
        FaultSpec(cell="b|g|s", kind="error"),
    )))
    faults.on_attempt("a|g|s", 1)  # would exit or sleep 60s in a worker
    with pytest.raises(InjectedFault):
        faults.on_attempt("b|g|s", 1)


def test_corrupt_entry_truncates_in_place(tmp_path):
    path = tmp_path / "entry.json"
    path.write_bytes(b"0123456789abcdef")
    assert faults.corrupt_entry(path)
    assert path.read_bytes() == b"01234567"
    assert not faults.corrupt_entry(tmp_path / "absent.json")


# --------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------- #


def test_retry_delay_is_deterministic_and_bounded():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                         backoff_max=10.0, jitter=0.5)
    d2 = policy.delay("cell-key", 2)
    assert d2 == policy.delay("cell-key", 2)  # no RNG anywhere
    assert 0.075 <= d2 <= 0.125  # base 0.1 +/- 25%
    assert policy.delay("cell-key", 2) != policy.delay("other-key", 2)

    exact = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                        backoff_max=0.3, jitter=0.0)
    assert exact.delay("k", 2) == pytest.approx(0.1)
    assert exact.delay("k", 3) == pytest.approx(0.2)
    assert exact.delay("k", 9) == pytest.approx(0.3)  # capped


def test_retry_policy_validation_and_env(monkeypatch):
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=2.0)

    monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "5")
    monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2.5")
    policy = RetryPolicy.from_env()
    assert policy.max_attempts == 5
    assert policy.timeout == 2.5

    monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "banana")
    monkeypatch.setenv("REPRO_CELL_TIMEOUT", "-3")
    policy = RetryPolicy.from_env()
    assert policy.max_attempts == 3  # defaults survive bogus values
    assert policy.timeout is None


# --------------------------------------------------------------------- #
# Run manifest
# --------------------------------------------------------------------- #


def test_run_key_depends_on_cell_order_and_content():
    assert run_key(["a", "b"]) == run_key(["a", "b"])
    assert run_key(["a", "b"]) != run_key(["b", "a"])
    assert run_key(["a", "b"]) != run_key(["a", "b", "c"])


def test_manifest_records_survive_torn_and_foreign_lines(tmp_path):
    manifest = RunManifest.for_run(tmp_path / "manifests", ["k1", "k2"])
    assert manifest.load() == {}
    manifest.record("k1", {"workload": "P1"})
    manifest.record("k2", {"workload": "P2"})
    with open(manifest.path, "a", encoding="utf-8") as handle:
        handle.write('{"format": 99, "key": "k3"}\n')  # foreign version
        handle.write('{"format": 1, "key": "k4"')  # torn trailing append

    records = manifest.load()
    assert sorted(records) == ["k1", "k2"]
    assert records["k1"]["cell"] == {"workload": "P1"}

    manifest.discard()
    assert not manifest.path.exists()
    manifest.discard()  # idempotent


# --------------------------------------------------------------------- #
# Worker error paths
# --------------------------------------------------------------------- #


def test_worker_trace_errors_name_workload_and_spool(tmp_path,
                                                     monkeypatch):
    monkeypatch.setattr(parallel, "_worker_trace_dir", None)
    monkeypatch.setattr(parallel, "_worker_traces", {})
    with pytest.raises(RuntimeError, match="_worker_init"):
        parallel._worker_trace("NV-SP")

    monkeypatch.setattr(parallel, "_worker_trace_dir", tmp_path)
    with pytest.raises(FileNotFoundError) as excinfo:
        parallel._worker_trace("NV-SP")
    message = str(excinfo.value)
    assert "'NV-SP'" in message
    assert str(tmp_path / "NV-SP.npz") in message


def test_cell_spec_identity_matches_fault_addressing(fake_registry):
    specs = plan_cells(["P1"], ["baseline"], GPUS)
    assert [spec.cell_id for spec in specs] == ["P1|3060-Sim|baseline"]


# --------------------------------------------------------------------- #
# Runtime cross-check of the static process-safety model (REPRO_SANITIZE)
# --------------------------------------------------------------------- #


def _static_write_model():
    """(resource, protocol) pairs the lint escape analysis derives for
    the shipped tree -- the model ARC009/ARC012 reason about."""
    from pathlib import Path

    import repro
    from repro.lint.engine import (
        LintConfig,
        LintContext,
        collect_files,
        parse_module,
    )
    from repro.lint.rules.concurrency import _analyses

    root = Path(repro.__file__).parent
    modules = []
    for path, file_root in collect_files([root]):
        module, error = parse_module(path, file_root)
        if error is None:
            modules.append(module)
    _, _, resources = _analyses(LintContext(LintConfig(), modules))
    return {(a.resource, a.protocol) for a in resources.writes()}


def test_iosan_observations_match_static_model(fake_registry, tmp_path,
                                               monkeypatch):
    """The REPRO_SANITIZE I/O shim records every shared-file access a
    faulted parallel run performs, across parent and spawned workers;
    folding those observations into (resource, protocol) pairs must
    reproduce the static model exactly.  An unmodeled runtime writer
    (analysis unsoundness) or a modeled-but-never-exercised protocol
    both fail here."""
    from repro.experiments import iosan

    serial_baseline(tmp_path)
    log_path = tmp_path / "iosan.jsonl"
    obslog_path = tmp_path / "obslog.jsonl"
    monkeypatch.setenv(iosan.SANITIZE_ENV, "1")
    monkeypatch.setenv(iosan.IOSAN_LOG_ENV, str(log_path))
    monkeypatch.setenv("REPRO_OBSLOG", str(obslog_path))
    faults.configure(FaultPlan((
        FaultSpec(cell=CORRUPT_CELL, kind="corrupt-cache", times=3),
    )))
    assert iosan.maybe_install(), "shim must arm when both env vars set"
    try:
        run_matrix_parallel(WORKLOADS, STRATEGIES, GPUS, jobs=2,
                            policy=chaos_policy())
        # Warm rerun quarantines the corrupt entry, exercising the
        # quarantine resource class' atomic-rename writer too.
        faults.configure(None)
        clear_caches()
        warm = run_matrix(WORKLOADS, STRATEGIES, GPUS)
    finally:
        iosan.uninstall()
    assert not iosan.installed()
    assert len(warm) == N_CELLS

    cache = diskcache.active_cache()
    assert cache.stats.quarantined == 1
    events = iosan.read_log(log_path)
    assert events, "armed shim must record I/O"
    assert len({event["pid"] for event in events}) >= 2, \
        "spawned workers must install their own shim via _worker_init"

    observed = iosan.observed_protocols(
        events, cache.root, str(obslog_path)
    )
    static = _static_write_model()
    unexplained = observed - static
    assert not unexplained, (
        "runtime writes the static process-safety model does not "
        f"explain (analysis unsoundness): {sorted(unexplained)}"
    )
    # The injected torn write is the one unsound protocol in the model
    # (the suppressed ARC009 in faults.corrupt_entry) -- the shim must
    # see it happen for real.
    assert ("cache-results", iosan.PROTOCOL_RAW_WRITE) in observed
    # And the faulted run + quarantining rerun exercise every modeled
    # writer, so observed and static coincide exactly.
    assert observed == static


def test_iosan_clean_run_uses_only_sound_protocols(fake_registry, tmp_path,
                                                   monkeypatch):
    """Without fault injection, every recorded shared-file write follows
    a sound protocol: the raw-write pair is the fault injector's doing,
    not the production stack's."""
    from repro.experiments import iosan

    serial_baseline(tmp_path)
    log_path = tmp_path / "iosan.jsonl"
    monkeypatch.setenv(iosan.SANITIZE_ENV, "1")
    monkeypatch.setenv(iosan.IOSAN_LOG_ENV, str(log_path))
    assert iosan.maybe_install()
    try:
        run_matrix_parallel(WORKLOADS, STRATEGIES, GPUS, jobs=2,
                            policy=chaos_policy())
    finally:
        iosan.uninstall()

    cache = diskcache.active_cache()
    observed = iosan.observed_protocols(
        iosan.read_log(log_path), cache.root
    )
    sound = {iosan.PROTOCOL_ATOMIC_RENAME, iosan.PROTOCOL_APPEND}
    unsound = {pair for pair in observed if pair[1] not in sound}
    assert not unsound, f"clean run performed unsound writes: {unsound}"
    assert ("cache-results", iosan.PROTOCOL_ATOMIC_RENAME) in observed
    assert ("manifest", iosan.PROTOCOL_APPEND) in observed
