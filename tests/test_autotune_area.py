"""Tests for the §5.5.3 threshold auto-tuner and the §5.4 area model."""

import pytest

from repro.core.autotune import (
    DEFAULT_RETUNE_PERIOD,
    ThresholdAutotuner,
    tune_threshold,
)
from repro.gpu import RTX3060_SIM, RTX4090_SIM
from repro.gpu.area import (
    GPU_TOTAL_TRANSISTORS,
    TRANSISTORS_PER_FPU,
    area_overhead_fraction,
    reduction_unit_transistors,
)
from repro.trace import coalesced_trace


@pytest.fixture(scope="module")
def trace():
    return coalesced_trace(
        n_batches=3000, n_slots=256, num_params=9, mean_active=14, seed=5
    )


class TestTuneThreshold:
    def test_returns_best_and_all_timings(self, trace):
        best, timings = tune_threshold(
            trace, RTX3060_SIM, variant="B", candidates=(0, 8, 16, 24)
        )
        assert best in (0, 8, 16, 24)
        assert set(timings) == {0, 8, 16, 24}
        assert timings[best] == min(timings.values())

    def test_default_profiles_all_33_values(self, trace):
        small = trace.subsample(300)
        best, timings = tune_threshold(small, RTX3060_SIM, variant="S")
        assert len(timings) == 33
        assert 0 <= best <= 32

    def test_variant_validated(self, trace):
        with pytest.raises(ValueError):
            tune_threshold(trace, RTX3060_SIM, variant="Q")

    def test_empty_candidates_rejected(self, trace):
        with pytest.raises(ValueError):
            tune_threshold(trace, RTX3060_SIM, candidates=())


class TestAutotuner:
    def test_reprofiles_on_schedule(self, trace):
        tuner = ThresholdAutotuner(
            RTX3060_SIM, period=10, candidates=(0, 8, 16)
        )
        calls = []

        def provider():
            calls.append(1)
            return trace.subsample(200)

        for iteration in range(25):
            tuner.threshold(iteration, provider)
        assert len(calls) == 3  # iterations 0, 10, 20
        assert tuner.profiles_run == 3

    def test_threshold_stable_between_profiles(self, trace):
        tuner = ThresholdAutotuner(
            RTX3060_SIM, period=100, candidates=(0, 16)
        )
        sub = trace.subsample(200)
        first = tuner.threshold(0, lambda: sub)
        assert tuner.threshold(1, lambda: 1 / 0) == first  # no re-profile

    def test_default_period_matches_paper(self):
        assert DEFAULT_RETUNE_PERIOD == 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdAutotuner(RTX3060_SIM, period=0)
        with pytest.raises(ValueError):
            ThresholdAutotuner(RTX3060_SIM, initial_threshold=40)
        with pytest.raises(ValueError):
            ThresholdAutotuner(RTX3060_SIM, variant="X")
        tuner = ThresholdAutotuner(RTX3060_SIM)
        with pytest.raises(ValueError):
            tuner.threshold(-1, lambda: None)


class TestArea:
    def test_paper_arithmetic_for_4090(self):
        """§5.4: 128 x 4 x 70K = 35.84M transistors, ~0.047% of 76B."""
        transistors = reduction_unit_transistors(RTX4090_SIM)
        assert transistors == 128 * 4 * 70_000
        fraction = area_overhead_fraction(RTX4090_SIM)
        assert fraction == pytest.approx(0.00047, rel=0.05)

    def test_3060_overhead_also_small(self):
        assert area_overhead_fraction(RTX3060_SIM) < 0.001

    def test_custom_total(self):
        fraction = area_overhead_fraction(
            RTX4090_SIM, total_transistors=35_840_000
        )
        assert fraction == pytest.approx(1.0)

    def test_unknown_gpu_requires_total(self):
        import dataclasses
        custom = dataclasses.replace(RTX4090_SIM, name="custom")
        with pytest.raises(ValueError):
            area_overhead_fraction(custom)
        assert area_overhead_fraction(custom, total_transistors=1e9) > 0

    def test_invalid_total_rejected(self):
        with pytest.raises(ValueError):
            area_overhead_fraction(RTX4090_SIM, total_transistors=0)

    def test_constants_documented(self):
        assert TRANSISTORS_PER_FPU == 70_000
        assert set(GPU_TOTAL_TRANSISTORS) == {"4090-Sim", "3060-Sim"}
