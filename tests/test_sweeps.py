"""Tests for the characterization sweep (where ARC wins)."""

import pytest

from repro.experiments.sweeps import (
    SweepPoint,
    characterization_sweep,
    make_character_trace,
)
from repro.gpu import RTX3060_SIM
from repro.trace.analysis import intra_warp_locality


class TestCharacterTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_character_trace(0.0, 1)
        with pytest.raises(ValueError):
            make_character_trace(8.0, 0)

    def test_single_group_is_fully_coalesced(self):
        trace = make_character_trace(16.0, 1, n_batches=500)
        assert intra_warp_locality(trace) == 1.0
        assert trace.bfly_eligible

    def test_many_groups_scatter(self):
        trace = make_character_trace(24.0, 8, n_batches=500)
        assert intra_warp_locality(trace) < 0.2
        assert not trace.bfly_eligible

    def test_mean_active_controls_density(self):
        sparse = make_character_trace(4.0, 1, n_batches=800, seed=1)
        dense = make_character_trace(28.0, 1, n_batches=800, seed=1)
        assert (
            dense.active_lane_counts.mean()
            > sparse.active_lane_counts.mean() + 15
        )


class TestSweep:
    @pytest.fixture(scope="class")
    def surface(self):
        return characterization_sweep(
            RTX3060_SIM,
            active_levels=(4, 24),
            group_levels=(1, 8),
            n_batches=4000,
        )

    def test_grid_covered(self, surface):
        cells = {(p.mean_active, p.groups_per_warp) for p in surface}
        assert cells == {(4.0, 1), (24.0, 1), (4.0, 8), (24.0, 8)}
        assert all(isinstance(p, SweepPoint) for p in surface)

    def test_coalesced_dense_is_the_sweet_spot(self, surface):
        by_cell = {
            (p.mean_active, p.groups_per_warp): p for p in surface
        }
        sweet = by_cell[(24.0, 1)]
        scattered = by_cell[(24.0, 8)]
        # The paper's core claim as a surface: high locality + many active
        # lanes is where ARC shines; scattered warps gain much less.
        assert sweet.arc_hw_speedup > scattered.arc_hw_speedup
        assert sweet.arc_hw_speedup > 1.5
        assert sweet.arc_sw_speedup > 1.2

    def test_speedups_positive_everywhere(self, surface):
        for point in surface:
            assert point.arc_hw_speedup > 0.5
            assert point.arc_sw_speedup > 0.5
