"""Property tests over *every* registered atomic strategy.

``tests/test_properties.py`` checks engine-level conservation for a
hand-picked strategy sample; this module sweeps the full
``STRATEGY_FACTORIES`` registry (all ARC-SW thresholds included) and
holds each entry to the :class:`~repro.core.base.AtomicStrategy`
contract:

* ``reduce_batch_values`` must cover exactly the batch's active slot
  set, emit each slot at most once, and conserve the scatter-add mass
  (modulo FP reassociation -- butterfly order differs from serialized
  order, but both must agree with the float64 reference to tolerance);
* repeated evaluation from fresh instances must be deterministic --
  bitwise for the functional reduction, full ``SimResult.to_dict()``
  equality for whole-kernel simulation.

These invariants are what the bench comparator's exact-equality policy
for deterministic metrics stands on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import STRATEGY_FACTORIES, make_strategy
from repro.gpu import RTX3060_SIM, simulate_kernel
from repro.gpu.warp import WARP_SIZE
from repro.trace import KernelTrace

ALL_STRATEGIES = sorted(STRATEGY_FACTORIES)

batch_params = st.fixed_dictionaries(
    {
        "n_slots": st.integers(min_value=1, max_value=24),
        "num_params": st.integers(min_value=1, max_value=6),
        "density": st.floats(min_value=0.0, max_value=1.0),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def build_batch(params):
    """One warp batch: per-lane slot targets (-1 = inactive) + values."""
    rng = np.random.default_rng(params["seed"])
    active = rng.random(WARP_SIZE) < params["density"]
    slots = rng.integers(0, params["n_slots"], size=WARP_SIZE)
    lane_slots = np.where(active, slots, -1)
    values = rng.normal(size=(WARP_SIZE, params["num_params"]))
    return lane_slots, values


def reference_scatter_add(lane_slots, values):
    """Float64 scatter-add ground truth, slot -> summed params vector."""
    reference = {}
    for lane, slot in enumerate(lane_slots):
        if slot < 0:
            continue
        if int(slot) not in reference:
            reference[int(slot)] = np.zeros(values.shape[1])
        reference[int(slot)] += values[lane].astype(np.float64)
    return reference


@pytest.mark.parametrize("name", ALL_STRATEGIES)
@given(batch_params)
@settings(max_examples=25, deadline=None)
def test_reduce_covers_slot_set_without_duplicates(name, params):
    """Every active slot appears exactly once: no lane's contribution is
    dropped, and no (slot, value) pair is applied twice."""
    lane_slots, values = build_batch(params)
    contributions = make_strategy(name).reduce_batch_values(
        lane_slots, values
    )
    slots = [slot for slot, _ in contributions]
    assert len(slots) == len(set(slots)), f"{name}: duplicate slot"
    expected = {int(s) for s in np.unique(lane_slots[lane_slots >= 0])}
    assert set(slots) == expected, f"{name}: slot set drifted"


@pytest.mark.parametrize("name", ALL_STRATEGIES)
@given(batch_params)
@settings(max_examples=25, deadline=None)
def test_reduce_conserves_scatter_add_mass(name, params):
    """Any reduction order must agree with the scatter-add reference."""
    lane_slots, values = build_batch(params)
    contributions = make_strategy(name).reduce_batch_values(
        lane_slots, values
    )
    reference = reference_scatter_add(lane_slots, values)
    for slot, total in contributions:
        np.testing.assert_allclose(
            total, reference[slot], rtol=1e-9, atol=1e-12,
            err_msg=f"{name}: slot {slot} lost mass",
        )


@pytest.mark.parametrize("name", ALL_STRATEGIES)
@given(batch_params)
@settings(max_examples=15, deadline=None)
def test_reduce_is_deterministic_across_fresh_instances(name, params):
    lane_slots, values = build_batch(params)
    first = make_strategy(name).reduce_batch_values(lane_slots, values)
    second = make_strategy(name).reduce_batch_values(lane_slots, values)
    assert [slot for slot, _ in first] == [slot for slot, _ in second]
    for (_, a), (_, b) in zip(first, second):
        # Bitwise: same instance-independent code path, same FP order.
        assert np.array_equal(a, b), name


trace_params = st.fixed_dictionaries(
    {
        "n_batches": st.integers(min_value=1, max_value=24),
        "n_slots": st.integers(min_value=1, max_value=16),
        "num_params": st.integers(min_value=1, max_value=4),
        "density": st.floats(min_value=0.05, max_value=1.0),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def build_trace(params) -> KernelTrace:
    rng = np.random.default_rng(params["seed"])
    active = rng.random((params["n_batches"], WARP_SIZE)) < params["density"]
    slots = rng.integers(0, params["n_slots"],
                         size=(params["n_batches"], WARP_SIZE))
    return KernelTrace(
        lane_slots=np.where(active, slots, -1),
        num_params=params["num_params"],
        n_slots=params["n_slots"],
        compute_cycles=20.0,
    )


@pytest.mark.parametrize("name", ALL_STRATEGIES)
@given(trace_params)
@settings(max_examples=8, deadline=None)
def test_simulation_deterministic_for_every_strategy(name, params):
    """Two fresh instances replay the same trace to identical results --
    the whole-document exactness the bench comparator relies on."""
    trace = build_trace(params)
    first = simulate_kernel(trace, RTX3060_SIM, make_strategy(name))
    second = simulate_kernel(trace, RTX3060_SIM, make_strategy(name))
    assert first.to_dict() == second.to_dict(), name


@pytest.mark.parametrize("name", ALL_STRATEGIES)
@given(trace_params)
@settings(max_examples=8, deadline=None)
def test_accounting_is_sane_for_every_strategy(name, params):
    """Generic sanity every strategy must satisfy: non-negative counters
    and local + ROP work that at least touches every lane value."""
    trace = build_trace(params)
    result = simulate_kernel(trace, RTX3060_SIM, make_strategy(name))
    assert result.total_cycles > 0
    for counter in ("rop_ops", "ru_values", "buffer_ops", "l1_tag_ops",
                    "shuffle_ops", "lane_ops"):
        assert getattr(result, counter) >= 0, (name, counter)
    assert result.lane_ops == trace.total_lane_ops, name
    # A lane value is either sent to the ROPs, merged by shuffles,
    # serially reduced on the FPU, or absorbed by a local buffer.
    touched = (result.rop_ops + result.shuffle_ops + result.ru_values
               + result.buffer_ops + result.l1_tag_ops)
    assert touched >= min(result.lane_ops, 1), name


def test_registry_names_are_stable():
    """The registry's names are API: the bench scenarios, the engine
    guard fixtures and the paper's figures all reference them."""
    assert ALL_STRATEGIES == sorted(
        ["baseline", "ARC-HW", "CCCL", "LAB", "LAB-ideal", "PHI"]
        + [f"ARC-SW-B-{t}" for t in (0, 4, 8, 16, 24)]
        + [f"ARC-SW-S-{t}" for t in (0, 4, 8, 16, 24)]
    )
    for name in ALL_STRATEGIES:
        instance = make_strategy(name)
        assert make_strategy(name).name == instance.name  # stable label
        assert isinstance(instance.name, str) and instance.name
