"""Tests for the workload layer: scenes, registry, training, capture."""

import numpy as np
import pytest

from repro.trace.analysis import intra_warp_locality
from repro.workloads import (
    APPLICATIONS,
    WORKLOAD_KEYS,
    CubemapWorkload,
    GaussianWorkload,
    SphereWorkload,
    load_workload,
)
from repro.workloads.base import _concat_traces
from repro.workloads.scenes import (
    clustered_gaussian_scene,
    clustered_sphere_scene,
    perturbed_gaussian_scene,
    perturbed_sphere_scene,
)


def tiny_gaussian_workload(**overrides):
    params = dict(
        key="t3d", dataset="d", description="x", n_gaussians=120,
        base_scale=0.15, extent=1.0, width=64, height=64, seed=1,
    )
    params.update(overrides)
    return GaussianWorkload(**params)


def tiny_sphere_workload(**overrides):
    params = dict(
        key="tps", dataset="d", description="x", n_spheres=80,
        base_radius=0.16, extent=1.0, width=64, height=64, seed=2,
    )
    params.update(overrides)
    return SphereWorkload(**params)


def tiny_cubemap_workload(**overrides):
    params = dict(
        key="tnv", dataset="d", description="x", cubemap_resolution=8,
        width=64, height=64, seed=3, trace_views=2,
    )
    params.update(overrides)
    return CubemapWorkload(**params)


class TestScenes:
    def test_clustered_scene_deterministic(self):
        a = clustered_gaussian_scene(50, seed=7)
        b = clustered_gaussian_scene(50, seed=7)
        np.testing.assert_array_equal(a.positions, b.positions)
        c = clustered_gaussian_scene(50, seed=8)
        assert not np.array_equal(a.positions, c.positions)

    def test_clustered_scene_within_extent(self):
        scene = clustered_gaussian_scene(200, seed=1, extent=1.0)
        assert np.abs(scene.positions).max() < 3.0

    def test_perturbed_keeps_geometry_near_reference(self):
        reference = clustered_gaussian_scene(60, seed=2)
        perturbed = perturbed_gaussian_scene(reference, seed=3, noise=0.01)
        distance = np.linalg.norm(
            perturbed.positions - reference.positions, axis=1
        )
        assert distance.max() < 0.1
        assert (perturbed.colors == 0.5).all()  # appearance reset

    def test_perturbed_sphere_scene(self):
        reference = clustered_sphere_scene(40, seed=4)
        perturbed = perturbed_sphere_scene(reference, seed=5)
        assert len(perturbed) == 40
        assert not np.array_equal(perturbed.centers, reference.centers)

    def test_quaternions_stay_normalized(self):
        reference = clustered_gaussian_scene(30, seed=6)
        perturbed = perturbed_gaussian_scene(reference, seed=7)
        norms = np.linalg.norm(perturbed.quaternions, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-12)


class TestRegistry:
    def test_all_twelve_workloads_listed(self):
        assert len(WORKLOAD_KEYS) == 12
        assert [k.split("-")[0] for k in WORKLOAD_KEYS].count("3D") == 6
        assert [k.split("-")[0] for k in WORKLOAD_KEYS].count("NV") == 4
        assert [k.split("-")[0] for k in WORKLOAD_KEYS].count("PS") == 2

    def test_application_prefixes(self):
        assert set(APPLICATIONS) == {"3D", "NV", "PS"}

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            load_workload("3D-XX")

    def test_load_returns_fresh_unbuilt_instances(self):
        a = load_workload("3D-LE")
        b = load_workload("3D-LE")
        assert a is not b
        assert not a._built

    def test_pulsar_workloads_ineligible_for_butterfly(self):
        for key in ("PS-SS", "PS-SL"):
            assert not load_workload(key).bfly_eligible

    def test_table2_dataset_names(self):
        assert load_workload("3D-PR").dataset == "DBCOLMAP-Playroom"
        assert load_workload("NV-BB").dataset == "KeenanCrane-Bob"
        assert load_workload("PS-SL").dataset == "SyntheticSpheres-Large"


class TestTrainingLoop:
    def test_gaussian_training_improves_psnr(self):
        workload = tiny_gaussian_workload()
        report = workload.train(iterations=25)
        assert report.iterations == 25
        assert report.psnr_end > report.psnr_start
        assert report.final_loss < report.losses[0]

    def test_sphere_training_reduces_loss(self):
        workload = tiny_sphere_workload()
        report = workload.train(iterations=20)
        assert report.final_loss < report.losses[0]

    def test_cubemap_training_reduces_loss(self):
        workload = tiny_cubemap_workload()
        report = workload.train(iterations=15)
        assert report.final_loss < report.losses[0] / 2

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            tiny_gaussian_workload().train(iterations=0)

    def test_final_loss_requires_iterations(self):
        from repro.workloads.base import TrainingReport
        with pytest.raises(ValueError):
            TrainingReport(workload="x").final_loss


class TestCapture:
    def test_gaussian_trace_has_high_locality(self):
        trace = tiny_gaussian_workload().capture_trace()
        assert intra_warp_locality(trace) > 0.99  # paper Observation 1

    def test_cubemap_trace_has_low_locality(self):
        trace = tiny_cubemap_workload().capture_trace()
        assert intra_warp_locality(trace) < 0.5

    def test_trace_views_concatenate_with_warp_offsets(self):
        single = tiny_gaussian_workload(trace_views=1).capture_trace()
        double = tiny_gaussian_workload(trace_views=2).capture_trace()
        assert double.n_batches > single.n_batches
        assert double.warp_id.max() > single.warp_id.max()

    def test_capture_with_values_allows_verification(self):
        trace = tiny_gaussian_workload().capture_trace(with_values=True)
        sums = trace.reference_sums()
        assert np.isfinite(sums).all()
        assert np.abs(sums).sum() > 0

    def test_warmup_steps_change_the_trace(self):
        cold = tiny_gaussian_workload().capture_trace()
        warm = tiny_gaussian_workload().capture_trace(warmup_steps=5)
        assert cold.n_batches != warm.n_batches or not np.array_equal(
            cold.lane_slots, warm.lane_slots
        )

    def test_invalid_trace_views_rejected(self):
        with pytest.raises(ValueError):
            tiny_gaussian_workload(trace_views=0)

    def test_concat_requires_matching_params(self):
        a = tiny_gaussian_workload().capture_trace()
        b = tiny_cubemap_workload().capture_trace()
        with pytest.raises(ValueError):
            _concat_traces([a, b], name="bad")
        with pytest.raises(ValueError):
            _concat_traces([], name="empty")

    def test_forward_stats(self):
        pairs, pixels = tiny_gaussian_workload().forward_stats()
        assert pixels == 64 * 64
        assert pairs > 0

    def test_quality_returns_finite_psnr(self):
        value = tiny_gaussian_workload().quality(0)
        assert np.isfinite(value)
        assert value > 5.0
