"""Tests for arclint (:mod:`repro.lint`).

Each rule gets at least one positive fixture (a tiny tree seeded with the
violation) and one negative (the compliant spelling of the same code).
The suppression and baseline machinery are exercised through both the
library API and the ``repro lint`` CLI, and a meta-test asserts the live
tree is clean against the checked-in baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import load_baseline, run_lint, write_baseline
from repro.lint.findings import Finding, Severity

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src" / "repro"
REPO_BASELINE = REPO_ROOT / ".arclint-baseline.json"


def make_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialize *files* (relative path -> source) under *root*."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


def lint(tmp_path: Path, files: dict[str, str], baseline=None):
    return run_lint([make_tree(tmp_path, files)], baseline_path=baseline)


def rules_found(report) -> set[str]:
    return {finding.rule for finding in report.new}


# --------------------------------------------------------------------- #
# ARC001 fingerprint-completeness
# --------------------------------------------------------------------- #


def test_arc001_explicit_fingerprint_missing_field(tmp_path):
    report = lint(tmp_path, {"cfg.py": (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Cfg:\n"
        "    alpha: float\n"
        "    beta: float\n"
        "    def fingerprint(self):\n"
        "        return str(self.alpha)\n"
    )})
    assert rules_found(report) == {"ARC001"}
    assert "beta" in report.new[0].message


def test_arc001_asdict_fingerprint_is_complete(tmp_path):
    report = lint(tmp_path, {"cfg.py": (
        "from dataclasses import asdict, dataclass\n"
        "@dataclass\n"
        "class Cfg:\n"
        "    alpha: float\n"
        "    beta: float\n"
        "    def fingerprint(self):\n"
        "        return str(asdict(self))\n"
    )})
    assert report.new == []


def test_arc001_to_dict_delegation_is_complete(tmp_path):
    report = lint(tmp_path, {"cfg.py": (
        "from dataclasses import dataclass, fields\n"
        "@dataclass\n"
        "class Cfg:\n"
        "    alpha: float\n"
        "    beta: float\n"
        "    def to_dict(self):\n"
        "        return {f.name: getattr(self, f.name) "
        "for f in fields(self)}\n"
        "    def fingerprint(self):\n"
        "        return str(self.to_dict())\n"
    )})
    assert report.new == []


def test_arc001_key_schema_omits_field(tmp_path):
    report = lint(tmp_path, {"cache.py": (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Cfg:\n"
        "    alpha: float\n"
        "    beta: float\n"
        "    gamma: float\n"
        "_KEY_FIELDS = ('alpha', 'beta')\n"
    )})
    assert rules_found(report) == {"ARC001"}
    assert "omits" in report.new[0].message
    assert "gamma" in report.new[0].message


def test_arc001_key_schema_with_stale_entry(tmp_path):
    report = lint(tmp_path, {"cache.py": (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Cfg:\n"
        "    alpha: float\n"
        "    beta: float\n"
        "_KEY_FIELDS = ('alpha', 'beta', 'removed_field')\n"
    )})
    assert rules_found(report) == {"ARC001"}
    assert "stale" in report.new[0].message


def test_arc001_complete_key_schema_passes(tmp_path):
    report = lint(tmp_path, {"cache.py": (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Cfg:\n"
        "    alpha: float\n"
        "    beta: float\n"
        "_KEY_FIELDS = ('alpha', 'beta')\n"
    )})
    assert report.new == []


def test_arc001_unrelated_string_tuple_is_ignored(tmp_path):
    report = lint(tmp_path, {"mod.py": (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Cfg:\n"
        "    alpha: float\n"
        "_POLICY_FIELDS = ('greedy', 'always', 'never')\n"
    )})
    assert report.new == []


# --------------------------------------------------------------------- #
# ARC002 determinism
# --------------------------------------------------------------------- #


def test_arc002_unseeded_default_rng(tmp_path):
    report = lint(tmp_path, {"core/mod.py": (
        "import numpy as np\n"
        "def sample():\n"
        "    return np.random.default_rng().random()\n"
    )})
    assert rules_found(report) == {"ARC002"}


def test_arc002_seeded_default_rng_passes(tmp_path):
    report = lint(tmp_path, {"core/mod.py": (
        "import numpy as np\n"
        "def sample(seed):\n"
        "    return np.random.default_rng(seed).random()\n"
    )})
    assert report.new == []


def test_arc002_stdlib_random_and_legacy_numpy(tmp_path):
    report = lint(tmp_path, {"gpu/mod.py": (
        "import random\n"
        "import numpy as np\n"
        "def sample():\n"
        "    return random.random() + np.random.rand()\n"
    )})
    assert len(report.new) == 2
    assert rules_found(report) == {"ARC002"}


def test_arc002_wall_clock_read(tmp_path):
    report = lint(tmp_path, {"trace/mod.py": (
        "import time\n"
        "def stamp():\n"
        "    return time.perf_counter()\n"
    )})
    assert rules_found(report) == {"ARC002"}
    assert "wall-clock" in report.new[0].message


def test_arc002_set_iteration(tmp_path):
    report = lint(tmp_path, {"core/mod.py": (
        "def drain(items):\n"
        "    return [x for x in set(items)]\n"
    )})
    assert rules_found(report) == {"ARC002"}


def test_arc002_sorted_set_iteration_passes(tmp_path):
    report = lint(tmp_path, {"core/mod.py": (
        "def drain(items):\n"
        "    return [x for x in sorted(set(items))]\n"
    )})
    assert report.new == []


def test_arc002_dict_values_iteration(tmp_path):
    report = lint(tmp_path, {"core/mod.py": (
        "def drain(table):\n"
        "    for value in table.values():\n"
        "        yield value\n"
    )})
    assert rules_found(report) == {"ARC002"}


def test_arc002_only_applies_to_engine_packages(tmp_path):
    # The same unseeded RNG in a workload module is legitimate territory
    # for wall clocks and ambient entropy -- the rule must stay quiet.
    report = lint(tmp_path, {"workloads/mod.py": (
        "import numpy as np\n"
        "import time\n"
        "def sample():\n"
        "    return np.random.default_rng().random() + time.time()\n"
    )})
    assert report.new == []


def test_arc002_single_file_keeps_package_scope(tmp_path):
    # Linting one file must not strip its package context: the lint root
    # ascends past __init__.py dirs so `repro lint src/repro/core/x.py`
    # still runs the engine-scoped rules.
    make_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/core/__init__.py": "",
        "repro/core/mod.py": (
            "import random\n"
            "def jitter():\n"
            "    return random.random()\n"
        ),
    })
    report = run_lint([tmp_path / "repro" / "core" / "mod.py"])
    assert rules_found(report) == {"ARC002"}
    assert report.new[0].path == "repro/core/mod.py"


# --------------------------------------------------------------------- #
# ARC003 unit-safety
# --------------------------------------------------------------------- #


def test_arc003_ns_plus_cycles(tmp_path):
    report = lint(tmp_path, {"mod.py": (
        "def total(service_ns, issue_cycles):\n"
        "    return service_ns + issue_cycles\n"
    )})
    assert rules_found(report) == {"ARC003"}


def test_arc003_clock_converted_term_passes(tmp_path):
    report = lint(tmp_path, {"mod.py": (
        "def total(service_ns, issue_cycles, clock_ghz):\n"
        "    return service_ns * clock_ghz + issue_cycles\n"
    )})
    assert report.new == []


def test_arc003_same_unit_sums_pass(tmp_path):
    report = lint(tmp_path, {"mod.py": (
        "def total(a_cycles, b_cycles):\n"
        "    return a_cycles + b_cycles\n"
    )})
    assert report.new == []


def test_arc003_literal_added_to_ns_table(tmp_path):
    report = lint(tmp_path, {"mod.py": (
        "DOMAIN_NS = {'atomic': 0.95}\n"
        "def padded():\n"
        "    return DOMAIN_NS['atomic'] + 0.5\n"
    )})
    assert rules_found(report) == {"ARC003"}
    assert "literal" in report.new[0].message


def test_arc003_cycles_stored_into_ns_table(tmp_path):
    report = lint(tmp_path, {"mod.py": (
        "DOMAIN_NS = {'atomic': 0.95}\n"
        "def poison(extra_cycles):\n"
        "    DOMAIN_NS['atomic'] = extra_cycles\n"
    )})
    assert rules_found(report) == {"ARC003"}


# --------------------------------------------------------------------- #
# ARC004 strategy-conformance
# --------------------------------------------------------------------- #

_STRATEGY_BASE = (
    "class AtomicStrategy:\n"
    "    name = 'abstract'\n"
)


def test_arc004_missing_plan_batch_and_name(tmp_path):
    report = lint(tmp_path, {
        "core/__init__.py": "from core.mod import Broken\n",
        "core/mod.py": _STRATEGY_BASE + (
            "class Broken(AtomicStrategy):\n"
            "    def __init__(self, threshold: float = 0.5):\n"
            "        self.threshold = threshold\n"
        ),
    })
    messages = " ".join(f.message for f in report.new)
    assert rules_found(report) == {"ARC004"}
    assert "plan_batch" in messages


def test_arc004_non_scalar_ctor_parameter(tmp_path):
    report = lint(tmp_path, {
        "core/__init__.py": "from core.mod import Weighted\n",
        "core/mod.py": _STRATEGY_BASE + (
            "class Weighted(AtomicStrategy):\n"
            "    name = 'weighted'\n"
            "    def __init__(self, weights: list):\n"
            "        self.weights = weights\n"
            "    def plan_batch(self, batch, engine):\n"
            "        return None\n"
        ),
    })
    assert rules_found(report) == {"ARC004"}
    assert "non-scalar" in report.new[0].message


def test_arc004_unexported_strategy(tmp_path):
    report = lint(tmp_path, {
        "core/__init__.py": "__all__ = []\n",
        "core/mod.py": _STRATEGY_BASE + (
            "class Hidden(AtomicStrategy):\n"
            "    name = 'hidden'\n"
            "    def plan_batch(self, batch, engine):\n"
            "        return None\n"
        ),
    })
    assert rules_found(report) == {"ARC004"}
    assert "not exported" in report.new[0].message


def test_arc004_conformant_strategy_passes(tmp_path):
    report = lint(tmp_path, {
        "core/__init__.py": "from core.mod import Good\n__all__ = ['Good']\n",
        "core/mod.py": _STRATEGY_BASE + (
            "class Good(AtomicStrategy):\n"
            "    name = 'good'\n"
            "    def __init__(self, threshold: float = 0.5):\n"
            "        self.threshold = threshold\n"
            "    def plan_batch(self, batch, engine):\n"
            "        return None\n"
        ),
    })
    assert report.new == []


def test_arc004_inherited_interface_through_internal_base(tmp_path):
    # plan_batch and name provided by an underscored base: the concrete
    # subclass conforms through inheritance, the base itself is skipped.
    report = lint(tmp_path, {
        "core/__init__.py": "from core.mod import Child\n",
        "core/mod.py": _STRATEGY_BASE + (
            "class _Base(AtomicStrategy):\n"
            "    def __init__(self, threshold: int = 4):\n"
            "        self.name = f'base-{threshold}'\n"
            "    def plan_batch(self, batch, engine):\n"
            "        return None\n"
            "class Child(_Base):\n"
            "    pass\n"
        ),
    })
    assert report.new == []


# --------------------------------------------------------------------- #
# ARC005 resilient-execution
# --------------------------------------------------------------------- #


def test_arc005_flags_executor_map_in_experiments(tmp_path):
    report = lint(tmp_path, {"experiments/run.py": (
        "def run(pool, cells):\n"
        "    return list(pool.map(simulate, cells))\n"
    )})
    assert rules_found(report) == {"ARC005"}
    assert ".map()" in report.new[0].message


def test_arc005_flags_unbounded_future_waits(tmp_path):
    report = lint(tmp_path, {"experiments/run.py": (
        "def drain(futures):\n"
        "    first = futures[0].result()\n"
        "    why = futures[1].exception()\n"
        "    return first, why\n"
    )})
    assert rules_found(report) == {"ARC005"}
    assert len(report.new) == 2
    assert all("timeout" in f.message for f in report.new)


def test_arc005_timeout_and_non_executor_map_pass(tmp_path):
    report = lint(tmp_path, {"experiments/run.py": (
        "def run(executor, futures, series):\n"
        "    done = futures[0].result(timeout=0)\n"
        "    late = futures[1].result(30.0)\n"
        "    mapped = series.map(str)\n"  # not a pool/executor receiver
        "    return done, late, mapped\n"
    )})
    assert report.new == []


def test_arc005_is_scoped_to_experiment_packages(tmp_path):
    # The same anti-pattern outside the experiment-execution packages is
    # out of scope (workloads/benchmarks do not drive worker pools).
    report = lint(tmp_path, {"workloads/run.py": (
        "def run(pool, cells):\n"
        "    return list(pool.map(simulate, cells))\n"
    )})
    assert report.new == []


# --------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------- #


def test_inline_suppression_by_rule(tmp_path):
    report = lint(tmp_path, {"core/mod.py": (
        "import numpy as np\n"
        "def sample():\n"
        "    return np.random.default_rng().random()"
        "  # arclint: disable=ARC002\n"
    )})
    assert report.new == []
    assert len(report.suppressed) == 1
    assert report.suppressed[0].rule == "ARC002"


def test_inline_suppression_all(tmp_path):
    report = lint(tmp_path, {"core/mod.py": (
        "import numpy as np\n"
        "def sample():\n"
        "    return np.random.default_rng().random()"
        "  # arclint: disable=all\n"
    )})
    assert report.new == []
    assert len(report.suppressed) == 1


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    report = lint(tmp_path, {"core/mod.py": (
        "import numpy as np\n"
        "def sample():\n"
        "    return np.random.default_rng().random()"
        "  # arclint: disable=ARC003\n"
    )})
    assert rules_found(report) == {"ARC002"}


# --------------------------------------------------------------------- #
# Baseline machinery
# --------------------------------------------------------------------- #

_RNG_VIOLATION = {
    "core/mod.py": (
        "import numpy as np\n"
        "def sample():\n"
        "    return np.random.default_rng().random()\n"
    )
}


def test_baseline_grandfathers_findings(tmp_path):
    tree = make_tree(tmp_path / "tree", _RNG_VIOLATION)
    baseline = tmp_path / "baseline.json"
    first = run_lint([tree])
    assert first.exit_code == 1
    write_baseline(baseline, first.new)
    second = run_lint([tree], baseline_path=baseline)
    assert second.exit_code == 0
    assert second.new == []
    assert len(second.baselined) == 1


def test_baseline_survives_line_shifts(tmp_path):
    tree = make_tree(tmp_path / "tree", _RNG_VIOLATION)
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, run_lint([tree]).new)
    # Insert lines above the violation: ids are content-addressed, so
    # the entry must still match.
    path = tree / "core/mod.py"
    path.write_text("import numpy as np\n\n\n# shifted\n"
                    + path.read_text().split("\n", 1)[1])
    report = run_lint([tree], baseline_path=baseline)
    assert report.new == []
    assert report.stale_baseline == []
    assert len(report.baselined) == 1


def test_stale_baseline_entry_fails_the_run(tmp_path):
    tree = make_tree(tmp_path / "tree", _RNG_VIOLATION)
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, run_lint([tree]).new)
    # Fix the violation: its baseline entry is now stale and must fail.
    (tree / "core/mod.py").write_text(
        "import numpy as np\n"
        "def sample(seed):\n"
        "    return np.random.default_rng(seed).random()\n"
    )
    report = run_lint([tree], baseline_path=baseline)
    assert report.new == []
    assert len(report.stale_baseline) == 1
    assert report.exit_code == 1


def test_baseline_is_byte_deterministic(tmp_path):
    tree = make_tree(tmp_path / "tree", {
        **_RNG_VIOLATION,
        "core/other.py": "def f(a_ns, b_cycles):\n    return a_ns + b_cycles\n",
    })
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    write_baseline(first, run_lint([tree]).new)
    write_baseline(second, run_lint([tree]).new)
    assert first.read_bytes() == second.read_bytes()
    entries = json.loads(first.read_text())["entries"]
    assert entries == sorted(entries, key=lambda entry: entry["id"])


def test_load_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "entries": []}')
    with pytest.raises(ValueError, match="baseline version"):
        load_baseline(path)


def test_finding_ids_are_stable_and_distinct():
    a = Finding("ARC002", Severity.ERROR, "core/m.py", 3, "msg", "x()", 0)
    b = Finding("ARC002", Severity.ERROR, "core/m.py", 9, "msg", "x()", 0)
    c = Finding("ARC002", Severity.ERROR, "core/m.py", 3, "msg", "x()", 1)
    assert a.content_id == b.content_id  # line number does not matter
    assert a.content_id != c.content_id  # occurrence does


# --------------------------------------------------------------------- #
# Parse errors
# --------------------------------------------------------------------- #


def test_syntax_error_becomes_arc000_finding(tmp_path):
    report = lint(tmp_path, {"mod.py": "def broken(:\n"})
    assert rules_found(report) == {"ARC000"}
    assert report.exit_code == 1


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def test_cli_lint_reports_and_fails(tmp_path, capsys):
    tree = make_tree(tmp_path / "tree", _RNG_VIOLATION)
    assert main(["lint", str(tree), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "ARC002" in out
    assert "new finding" in out


def test_cli_lint_json_schema(tmp_path, capsys):
    tree = make_tree(tmp_path / "tree", _RNG_VIOLATION)
    assert main(["lint", str(tree), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["summary"]["new"] == 1
    assert payload["summary"]["exit_code"] == 1
    finding = payload["findings"][0]
    for key in ("id", "rule", "severity", "path", "line", "message",
                "snippet", "occurrence"):
        assert key in finding
    assert finding["rule"] == "ARC002"
    assert finding["path"] == "core/mod.py"


def test_cli_fix_baseline_roundtrip(tmp_path, capsys):
    tree = make_tree(tmp_path / "tree", _RNG_VIOLATION)
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(tree), "--baseline", str(baseline),
                 "--fix-baseline"]) == 0
    assert main(["lint", str(tree), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


# --------------------------------------------------------------------- #
# Meta: the live tree is clean
# --------------------------------------------------------------------- #


def test_live_tree_is_clean():
    report = run_lint([REPO_SRC], baseline_path=REPO_BASELINE)
    assert report.files_checked > 50
    details = "\n".join(f.render() for f in report.new)
    assert report.new == [], f"arclint findings on src/repro:\n{details}"
    assert report.stale_baseline == []


def test_cli_meta_lint_exits_zero():
    assert main(["lint", str(REPO_SRC), "--baseline",
                 str(REPO_BASELINE)]) == 0
