"""Cross-cutting property tests: invariants over random traces.

These run hypothesis over whole simulated kernels, checking conservation
and ordering properties that every figure implicitly relies on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LAB,
    PHI,
    ArcHW,
    ArcSWButterfly,
    ArcSWSerialized,
    BaselineAtomic,
    CCCLReduce,
    LABIdeal,
)
from repro.gpu import RTX3060_SIM, simulate_kernel
from repro.gpu.warp import WARP_SIZE
from repro.trace import KernelTrace

trace_params = st.fixed_dictionaries(
    {
        "n_batches": st.integers(min_value=1, max_value=120),
        "n_slots": st.integers(min_value=1, max_value=40),
        "num_params": st.integers(min_value=1, max_value=12),
        "density": st.floats(min_value=0.0, max_value=1.0),
        "spread": st.integers(min_value=1, max_value=32),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def build_trace(params) -> KernelTrace:
    rng = np.random.default_rng(params["seed"])
    active = rng.random((params["n_batches"], WARP_SIZE)) < params["density"]
    # `spread` controls how many distinct slots a warp's lanes straddle.
    base = rng.integers(0, params["n_slots"],
                        size=(params["n_batches"], 1))
    jitter = rng.integers(0, params["spread"],
                          size=(params["n_batches"], WARP_SIZE))
    slots = (base + jitter) % params["n_slots"]
    lane_slots = np.where(active, slots, -1)
    return KernelTrace(
        lane_slots=lane_slots,
        num_params=params["num_params"],
        n_slots=params["n_slots"],
        compute_cycles=30.0,
    )


@given(trace_params)
@settings(max_examples=40, deadline=None)
def test_baseline_rop_ops_equal_lane_ops(params):
    """The baseline forwards exactly one ROP op per semantic lane-op."""
    trace = build_trace(params)
    result = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
    assert result.rop_ops == trace.total_lane_ops


@given(trace_params)
@settings(max_examples=40, deadline=None)
def test_reduction_strategies_never_add_rop_traffic(params):
    """No strategy may send more same-address work to the ROPs than the
    baseline does (reduction can only merge)."""
    trace = build_trace(params)
    baseline_ops = trace.total_lane_ops
    for strategy in (ArcSWSerialized(8), ArcSWButterfly(8), ArcHW(),
                     CCCLReduce()):
        result = simulate_kernel(trace, RTX3060_SIM, strategy)
        assert result.rop_ops <= baseline_ops, strategy.name


@given(trace_params)
@settings(max_examples=30, deadline=None)
def test_arc_hw_work_conservation(params):
    """Every lane value is either serviced by a ROP or reduced in an FPU
    (reduced groups still emit one ROP op per parameter)."""
    trace = build_trace(params)
    result = simulate_kernel(trace, RTX3060_SIM, ArcHW())
    assert result.rop_ops + result.ru_values >= trace.total_lane_ops
    assert result.ru_values <= trace.total_lane_ops


@given(trace_params)
@settings(max_examples=30, deadline=None)
def test_engine_determinism(params):
    trace = build_trace(params)
    for strategy_factory in (BaselineAtomic, ArcHW, LAB):
        first = simulate_kernel(trace, RTX3060_SIM, strategy_factory())
        second = simulate_kernel(trace, RTX3060_SIM, strategy_factory())
        assert first.total_cycles == second.total_cycles
        assert first.rop_ops == second.rop_ops


@given(trace_params)
@settings(max_examples=30, deadline=None)
def test_total_cycles_cover_critical_path_bounds(params):
    """The kernel can never finish before its ROP work drains nor before
    one sub-core's serial compute."""
    trace = build_trace(params)
    result = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
    if trace.n_batches == 0:
        return
    rop_floor = result.rop_busy_cycles / RTX3060_SIM.num_rops
    assert result.total_cycles >= rop_floor * 0.999
    per_subcore_floor = (
        trace.compute_cycles_per_batch.sum() / RTX3060_SIM.num_subcores
    )
    assert result.total_cycles >= per_subcore_floor * 0.999


@given(trace_params)
@settings(max_examples=25, deadline=None)
def test_buffering_absorbs_all_values(params):
    """LAB/PHI service every lane value locally; only aggregated partials
    (at most one per touched slot per SM, plus evictions) reach the ROPs."""
    trace = build_trace(params)
    for strategy in (LAB(), LABIdeal(), PHI()):
        result = simulate_kernel(trace, RTX3060_SIM, strategy)
        touched = result.buffer_ops + result.l1_tag_ops
        assert touched >= trace.total_lane_ops
        assert result.rop_ops % trace.num_params == 0


@given(trace_params)
@settings(max_examples=25, deadline=None)
def test_stall_accounting_non_negative(params):
    trace = build_trace(params)
    for strategy in (BaselineAtomic(), ArcSWSerialized(4), PHI()):
        result = simulate_kernel(trace, RTX3060_SIM, strategy)
        assert result.lsu_stall_cycles >= 0
        assert result.local_unit_stall_cycles >= 0
        assert result.compute_cycles >= 0
        fractions = result.stall_breakdown()
        assert all(v >= -1e-12 for v in fractions.values())


@given(st.integers(min_value=0, max_value=32),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=30, deadline=None)
def test_threshold_extremes_bracket_traffic(threshold, seed):
    """Raising the SW threshold monotonically increases ROP traffic (fewer
    groups are reduced locally)."""
    rng = np.random.default_rng(seed)
    active = rng.random((60, WARP_SIZE)) < 0.6
    slots = rng.integers(0, 8, size=(60, 1)) * np.ones(
        (60, WARP_SIZE), dtype=np.int64
    )
    trace = KernelTrace(
        lane_slots=np.where(active, slots, -1), num_params=4, n_slots=8,
    )
    low = simulate_kernel(trace, RTX3060_SIM, ArcSWSerialized(0))
    mid = simulate_kernel(
        trace, RTX3060_SIM, ArcSWSerialized(min(threshold, 32))
    )
    high = simulate_kernel(trace, RTX3060_SIM, ArcSWSerialized(32))
    assert low.rop_ops <= mid.rop_ops <= high.rop_ops
