"""The runtime half of ARC007: ``REPRO_SANITIZE=1`` event-order checks.

The static rule proves every heap push carries a ``push_seq``
tiebreaker; the sanitizer is its dynamic complement -- an assert in the
engine's pop loop that the popped event stream is strictly increasing.
These tests pin the property the sanitizer must have to stay on in CI:
it changes no results (same heap, same pops, only an extra comparison
per pop), across strategies with very different event patterns.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import LAB, ArcHW, BaselineAtomic
from repro.gpu import RTX4090_SIM, simulate_kernel
from repro.trace import mixed_locality_trace, scattered_trace


def small_gpu():
    return dataclasses.replace(
        RTX4090_SIM, name="tiny", num_sms=2, subcores_per_sm=2,
        num_rops=4, num_partitions=2,
    )


@pytest.mark.parametrize("strategy", [BaselineAtomic(), LAB(), ArcHW()],
                         ids=lambda s: type(s).__name__)
def test_sanitizer_is_result_neutral(monkeypatch, strategy):
    # Equal-time ties are common in these traces, so the run exercises
    # the tiebreaker ordering the sanitizer checks.
    trace = mixed_locality_trace(n_batches=120, seed=3)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    plain = simulate_kernel(trace, small_gpu(), strategy)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    checked = simulate_kernel(trace, small_gpu(), strategy)
    assert dataclasses.asdict(checked) == dataclasses.asdict(plain)


def test_sanitizer_zero_means_off(monkeypatch):
    trace = scattered_trace(n_batches=40, seed=1)
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    result = simulate_kernel(trace, small_gpu(), BaselineAtomic())
    assert result.total_cycles > 0
