"""Tests for repro.gpu.warp mask utilities, including property tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.warp import (
    FULL_MASK,
    WARP_SIZE,
    bools_from_mask,
    lanes_from_mask,
    lowest_lane,
    mask_from_bools,
    mask_from_lanes,
    popcount,
)

masks = st.integers(min_value=0, max_value=FULL_MASK)


def test_constants():
    assert WARP_SIZE == 32
    assert FULL_MASK == 0xFFFFFFFF


def test_popcount_basics():
    assert popcount(0) == 0
    assert popcount(FULL_MASK) == 32
    assert popcount(0b1011) == 3


def test_popcount_rejects_out_of_range():
    with pytest.raises(ValueError):
        popcount(-1)
    with pytest.raises(ValueError):
        popcount(FULL_MASK + 1)


def test_mask_from_lanes_roundtrip():
    lanes = [0, 5, 31]
    assert lanes_from_mask(mask_from_lanes(lanes)) == lanes


def test_mask_from_lanes_rejects_bad_lane():
    with pytest.raises(ValueError):
        mask_from_lanes([32])
    with pytest.raises(ValueError):
        mask_from_lanes([-1])


def test_mask_from_bools_roundtrip():
    active = np.zeros(WARP_SIZE, dtype=bool)
    active[[1, 2, 30]] = True
    mask = mask_from_bools(active)
    assert mask == mask_from_lanes([1, 2, 30])
    np.testing.assert_array_equal(bools_from_mask(mask), active)


def test_mask_from_bools_rejects_wrong_shape():
    with pytest.raises(ValueError):
        mask_from_bools(np.zeros(16, dtype=bool))


def test_lowest_lane():
    assert lowest_lane(0b1000) == 3
    assert lowest_lane(FULL_MASK) == 0
    assert lowest_lane(1 << 31) == 31


def test_lowest_lane_empty_mask_rejected():
    with pytest.raises(ValueError):
        lowest_lane(0)


@given(masks)
def test_popcount_matches_lane_list(mask):
    assert popcount(mask) == len(lanes_from_mask(mask))


@given(masks)
def test_bools_roundtrip_property(mask):
    assert mask_from_bools(bools_from_mask(mask)) == mask


@given(masks.filter(lambda m: m != 0))
def test_lowest_lane_is_minimum_of_lanes(mask):
    assert lowest_lane(mask) == min(lanes_from_mask(mask))
