"""Integration tests: the full pipeline, end to end.

These tie every layer together on one small 3DGS workload: train the
scene, capture a value-carrying trace from a real backward pass, verify
that every atomic strategy computes the same gradients, and check that the
simulated orderings that every figure relies on hold on this fresh
workload too.
"""

import numpy as np
import pytest

from repro.core import (
    LAB,
    PHI,
    ArcHW,
    ArcSWButterfly,
    ArcSWSerialized,
    BaselineAtomic,
    CCCLReduce,
    LABIdeal,
)
from repro.core.functional import accumulate_with_strategy, max_relative_error
from repro.gpu import RTX3060_SIM, l2_report, simulate_kernel
from repro.trace.analysis import profile_trace
from repro.workloads import GaussianWorkload


@pytest.fixture(scope="module")
def workload():
    return GaussianWorkload(
        key="integration", dataset="demo", description="integration scene",
        n_gaussians=250, base_scale=0.15, extent=1.2,
        width=96, height=96, seed=11,
    )


@pytest.fixture(scope="module")
def trace(workload):
    return workload.capture_trace(with_values=True)


class TestEndToEnd:
    def test_training_then_capture(self, workload):
        report = workload.train(iterations=10)
        assert report.final_loss < report.losses[0]
        trace = workload.capture_trace()
        assert trace.n_batches > 100

    def test_trace_matches_paper_observations(self, trace):
        profile = profile_trace(trace)
        assert profile.locality > 0.99          # Observation 1
        histogram = profile.histogram
        assert (histogram[1:] > 0).sum() > 10   # Observation 2: variation
        assert profile.num_params == 9          # 3DGS gradient block

    def test_every_strategy_preserves_gradients(self, trace):
        """The core correctness claim: all strategies compute the same
        sums as the dense scatter-add, on a real rendering trace."""
        small = trace.subsample(400, seed=0)
        reference = small.reference_sums()
        strategies = [
            BaselineAtomic(), ArcSWSerialized(8), ArcSWButterfly(8),
            ArcHW(), CCCLReduce(), LAB(), LABIdeal(), PHI(),
        ]
        for strategy in strategies:
            result = accumulate_with_strategy(small, strategy)
            assert max_relative_error(result, reference) < 1e-9, strategy

    def test_simulated_ordering_on_fresh_workload(self, trace):
        baseline = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
        arc_hw = simulate_kernel(trace, RTX3060_SIM, ArcHW())
        arc_swb = simulate_kernel(trace, RTX3060_SIM, ArcSWButterfly(8))
        arc_sws = simulate_kernel(trace, RTX3060_SIM, ArcSWSerialized(8))
        phi = simulate_kernel(trace, RTX3060_SIM, PHI())

        assert arc_hw.total_cycles < baseline.total_cycles
        assert arc_swb.total_cycles < baseline.total_cycles
        # HW beats SW (no instruction overheads), butterfly beats serial.
        assert arc_hw.total_cycles <= arc_swb.total_cycles * 1.05
        assert arc_swb.total_cycles < arc_sws.total_cycles
        # PHI is within noise of the baseline.
        assert phi.total_cycles > arc_swb.total_cycles

    def test_traffic_accounting_consistency(self, trace):
        """Semantical lane-ops are conserved: the baseline sends each one
        to the ROPs; ARC's ROP ops + locally reduced values cover them."""
        baseline = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
        assert baseline.rop_ops == trace.total_lane_ops
        arc = simulate_kernel(trace, RTX3060_SIM, ArcHW())
        assert arc.rop_ops < baseline.rop_ops
        assert arc.rop_ops + arc.ru_values >= trace.total_lane_ops * 0.95

    def test_l2_resident_gradient_buffer(self, trace):
        """§3.2: the stalls are not cache misses -- the buffer is hot."""
        report = l2_report(trace, RTX3060_SIM)
        assert report.fits_in_l2
        assert report.hit_rate > 0.97

    def test_energy_follows_speedup(self, trace):
        baseline = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
        arc = simulate_kernel(trace, RTX3060_SIM, ArcSWButterfly(8))
        assert (
            arc.energy_joules(RTX3060_SIM)
            < baseline.energy_joules(RTX3060_SIM)
        )

    def test_values_trace_survives_subsampling(self, trace):
        small = trace.subsample(100, seed=3)
        assert small.values is not None
        assert small.values.shape == (100, 32, 9)
        assert np.isfinite(small.reference_sums()).all()
