"""Legacy setuptools entry point.

Kept so ``pip install -e .`` works in fully offline environments where the
PEP 517 editable path is unavailable (no ``wheel`` package).  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
